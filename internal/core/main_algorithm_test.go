package core

import (
	"testing"

	"tellme/internal/prefs"
)

func TestDispatchRegime(t *testing.T) {
	n := 1024
	cut := smallRadiusCutoff(n) // ceil(ln 1025) = 7
	cases := []struct {
		d    int
		want Regime
	}{
		{0, RegimeZero},
		{1, RegimeSmall},
		{cut, RegimeSmall},
		{cut + 1, RegimeLarge},
		{512, RegimeLarge},
	}
	for _, c := range cases {
		if got := DispatchRegime(n, c.d); got != c.want {
			t.Fatalf("D=%d dispatched to %v, want %v", c.d, got, c.want)
		}
	}
}

func TestRegimeString(t *testing.T) {
	if RegimeZero.String() != "ZeroRadius" ||
		RegimeSmall.String() != "SmallRadius" ||
		RegimeLarge.String() != "LargeRadius" {
		t.Fatal("regime names wrong")
	}
	if Regime(99).String() != "unknown" {
		t.Fatal("unknown regime name")
	}
}

func TestMainZeroRegimeExact(t *testing.T) {
	in := prefs.Identical(128, 128, 0.5, 70)
	env, _ := newTestEnv(t, in, 71)
	out := Main(env, 0.5, 0)
	c := in.Communities[0]
	for _, p := range c.Members {
		if e := in.Err(p, out[p]); e != 0 {
			t.Fatalf("member %d error %d in zero regime", p, e)
		}
	}
}

func TestMainSmallRegime(t *testing.T) {
	in := prefs.Planted(256, 256, 0.5, 4, 72)
	env, _ := newTestEnv(t, in, 73)
	out := Main(env, 0.5, 4)
	c := in.Communities[0]
	for _, p := range c.Members {
		if e := in.Err(p, out[p]); e > 20 {
			t.Fatalf("member %d error %d > 5D", p, e)
		}
	}
}

func TestMainLargeRegime(t *testing.T) {
	in := prefs.Planted(512, 512, 0.5, 32, 74)
	env, _ := newTestEnv(t, in, 75)
	out := Main(env, 0.5, 32)
	c := in.Communities[0]
	for _, p := range c.Members {
		if e := in.Err(p, out[p]); e > 8*32*2 {
			t.Fatalf("member %d error %d", p, e)
		}
	}
}

func TestCandidateDs(t *testing.T) {
	ds := CandidateDs(100)
	if ds[0] != 0 || ds[1] != 1 {
		t.Fatalf("ds = %v", ds)
	}
	// strictly increasing, ends ≥ m
	for i := 1; i < len(ds); i++ {
		if ds[i] <= ds[i-1] {
			t.Fatalf("not increasing: %v", ds)
		}
	}
	if last := ds[len(ds)-1]; last < 100 {
		t.Fatalf("last candidate %d < m", last)
	}
}

func TestUnknownDMatchesCommunity(t *testing.T) {
	// With D unknown, output must still achieve small error — constant
	// stretch per Theorem 1.1.
	in := prefs.Planted(128, 128, 0.5, 6, 76)
	env, _ := newTestEnv(t, in, 77)
	out := UnknownD(env, 0.5)
	c := in.Communities[0]
	diam := in.Diameter(c.Members)
	if diam == 0 {
		diam = 1
	}
	bad := 0
	for _, p := range c.Members {
		if in.Err(p, out[p]) > 10*diam {
			bad++
		}
	}
	if bad > len(c.Members)/10 {
		t.Fatalf("%d/%d members exceeded 10× diameter", bad, len(c.Members))
	}
}

func TestUnknownDZeroDiameterCommunity(t *testing.T) {
	in := prefs.Identical(128, 128, 0.5, 78)
	env, _ := newTestEnv(t, in, 79)
	out := UnknownD(env, 0.5)
	c := in.Communities[0]
	bad := 0
	for _, p := range c.Members {
		if in.Err(p, out[p]) > 4 {
			bad++
		}
	}
	if bad > 0 {
		t.Fatalf("%d members with error > 4 on identical community", bad)
	}
}

func TestAnytimeImprovesOverPhases(t *testing.T) {
	in := prefs.Planted(128, 128, 0.25, 4, 80)
	env, _ := newTestEnv(t, in, 81)
	c := in.Communities[0]
	var phaseErrs []int
	Anytime(env, 0, func(ph AnytimePhase) bool {
		worst := 0
		for _, p := range c.Members {
			if e := in.Err(p, ph.Outputs[p]); e > worst {
				worst = e
			}
		}
		phaseErrs = append(phaseErrs, worst)
		return ph.Phase < 3
	})
	if len(phaseErrs) == 0 {
		t.Fatal("no phases ran")
	}
	last := phaseErrs[len(phaseErrs)-1]
	if last > phaseErrs[0] {
		t.Fatalf("quality degraded across phases: %v", phaseErrs)
	}
	// by the α=1/4 phase the community is found
	if len(phaseErrs) >= 2 && phaseErrs[1] > 30 {
		t.Fatalf("phase 2 error %d too large", phaseErrs[1])
	}
}

func TestAnytimeRespectsBudget(t *testing.T) {
	in := prefs.Planted(128, 128, 0.5, 4, 82)
	env, _ := newTestEnv(t, in, 83)
	budget := int64(200)
	Anytime(env, budget, nil)
	// The budget is checked between phases, so a single phase may
	// overshoot; it must still terminate and not run unbounded phases.
	var worst int64
	for p := 0; p < in.N; p++ {
		if c := env.Engine.Charged(p); c > worst {
			worst = c
		}
	}
	if worst == 0 {
		t.Fatal("anytime did nothing")
	}
}

func TestAnytimeStopsAtMinAlpha(t *testing.T) {
	// With tiny n the α-doubling floor log(n)/n is reached after a
	// couple of phases; Anytime must terminate on its own even with no
	// budget and no observer.
	in := prefs.Planted(24, 24, 0.5, 2, 84)
	env, _ := newTestEnv(t, in, 85)
	out := Anytime(env, 0, nil)
	for p := 0; p < in.N; p++ {
		if out[p].Len() != in.M {
			t.Fatalf("player %d output incomplete", p)
		}
	}
}
