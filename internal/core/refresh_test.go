package core

import (
	"testing"

	"tellme/internal/bitvec"
	"tellme/internal/prefs"
)

// refreshSetup runs ZeroRadius on an identical community, drifts the
// world, and returns (drifted instance env, stale outputs, community).
func refreshSetup(t *testing.T, n, driftK int, seed uint64) (*Env, []bitvec.Partial, *prefs.Instance) {
	t.Helper()
	in := prefs.Identical(n, n, 0.5, seed)
	env, _ := newTestEnv(t, in, seed+1)
	zr := ZeroRadiusBits(env, allPlayers(n), seqObjs(n), 0.5)
	stale := make([]bitvec.Partial, n)
	for p := 0; p < n; p++ {
		stale[p] = bitvec.PartialOf(valsToVector(zr[p]))
	}
	in2 := prefs.Drift(in, driftK, 0, seed+2)
	env2, _ := newTestEnv(t, in2, seed+3)
	return env2, stale, in2
}

func TestRefreshRepairsDrift(t *testing.T) {
	const n, k = 128, 8
	env2, stale, in2 := refreshSetup(t, n, k, 80)
	red, maxP := RefreshBudget(k)
	out := Refresh(env2, allPlayers(n), seqObjs(n), stale, 0.5, red, maxP)
	for _, p := range in2.Communities[0].Members {
		if e := in2.Err(p, out[p]); e != 0 {
			t.Fatalf("member %d error %d after refresh", p, e)
		}
	}
}

func TestRefreshCheaperThanRerun(t *testing.T) {
	const n, k = 256, 4
	env2, stale, in2 := refreshSetup(t, n, k, 81)
	red, maxP := RefreshBudget(k)
	snap := env2.Engine.Snapshot(nil)
	out := Refresh(env2, allPlayers(n), seqObjs(n), stale, 0.5, red, maxP)
	refreshCost := env2.Engine.MaxDelta(snap)

	// fresh re-run on the same drifted world
	env3, _ := newTestEnv(t, in2, 82)
	zr := ZeroRadiusBits(env3, allPlayers(n), seqObjs(n), 0.5)
	var rerunCost int64
	for p := 0; p < n; p++ {
		if c := env3.Engine.Charged(p); c > rerunCost {
			rerunCost = c
		}
	}
	_ = zr
	if refreshCost >= rerunCost {
		t.Fatalf("refresh cost %d not below fresh re-run %d", refreshCost, rerunCost)
	}
	for _, p := range in2.Communities[0].Members {
		if e := in2.Err(p, out[p]); e != 0 {
			t.Fatalf("member %d error %d", p, e)
		}
	}
}

func TestRefreshNoDriftIsAlmostFree(t *testing.T) {
	const n = 128
	env2, stale, in2 := refreshSetup(t, n, 0, 83)
	snap := env2.Engine.Snapshot(nil)
	out := Refresh(env2, allPlayers(n), seqObjs(n), stale, 0.5, 2, 32)
	cost := env2.Engine.MaxDelta(snap)
	// cost ≈ redundancy·m/(αn) = 2·2 = 4: holders split the
	// re-verification and there are no patches to verify.
	if cost > 8 {
		t.Fatalf("no-drift refresh cost %d", cost)
	}
	for _, p := range in2.Communities[0].Members {
		if e := in2.Err(p, out[p]); e != 0 {
			t.Fatalf("member %d error %d with zero drift", p, e)
		}
	}
}

func TestRefreshOutsidersUntouchedAndUncharged(t *testing.T) {
	// Players outside every consensus group keep their stale output and
	// are never assigned re-verification work.
	const n, k = 128, 4
	env2, stale, in2 := refreshSetup(t, n, k, 84)
	red, maxP := RefreshBudget(k)
	snap := env2.Engine.Snapshot(nil)
	out := Refresh(env2, allPlayers(n), seqObjs(n), stale, 0.5, red, maxP)
	inComm := map[int]bool{}
	for _, p := range in2.Communities[0].Members {
		inComm[p] = true
	}
	for p := 0; p < n; p++ {
		if inComm[p] {
			continue
		}
		if !out[p].Equal(stale[p]) {
			t.Fatalf("outsider %d output changed", p)
		}
		if c := env2.Engine.Charged(p) - snap[p]; c != 0 {
			t.Fatalf("outsider %d charged %d probes", p, c)
		}
	}
}

func TestRefreshEmptyInputs(t *testing.T) {
	in := prefs.Identical(8, 8, 0.5, 85)
	env, _ := newTestEnv(t, in, 86)
	out := Refresh(env, nil, seqObjs(8), nil, 0.5, 2, 8)
	for _, o := range out {
		if o.Len() != 0 {
			t.Fatal("output for empty player set")
		}
	}
}
