package core

import (
	"math"
	"testing"

	"tellme/internal/bitvec"
	"tellme/internal/rng"
)

// cluster builds count copies of center each with up to radius flips.
func cluster(r *rng.Rand, center bitvec.Vector, count, radius int) []bitvec.Partial {
	out := make([]bitvec.Partial, count)
	for i := range out {
		v := center.Clone()
		if radius > 0 {
			v.FlipRandom(r, r.Intn(radius+1))
		}
		out[i] = bitvec.PartialOf(v)
	}
	return out
}

func TestCoalesceSingleTightCluster(t *testing.T) {
	r := rng.New(1)
	center := bitvec.Random(r, 128)
	vecs := cluster(r, center, 40, 3) // diameter ≤ 6
	out := Coalesce(vecs, 6, 0.5)
	if len(out) != 1 {
		t.Fatalf("got %d output vectors, want 1", len(out))
	}
	if d := out[0].DistKnownVec(center); d > 12 {
		t.Fatalf("output at d~ %d from center (bound 2D=12)", d)
	}
}

func TestCoalesceTheorem53Bounds(t *testing.T) {
	r := rng.New(2)
	const m = 512
	for trial := 0; trial < 20; trial++ {
		d := 2 + r.Intn(8)
		alpha := []float64{0.2, 0.25, 0.5}[r.Intn(3)]
		n := 60
		nT := int(math.Ceil(alpha * float64(n)))
		center := bitvec.Random(r, m)
		vecs := cluster(r, center, nT, d/2)
		// pad with uniform noise vectors (far from everything w.h.p.)
		for len(vecs) < n {
			vecs = append(vecs, bitvec.PartialOf(bitvec.Random(r, m)))
		}
		out := Coalesce(vecs, d, alpha)
		// |B| ≤ 1/alpha
		if float64(len(out)) > 1/alpha+1e-9 {
			t.Fatalf("trial %d: %d outputs > 1/α = %v", trial, len(out), 1/alpha)
		}
		// exactly one output within 2d of every VT member; and its
		// ?-count ≤ 5d/α.
		uniq := 0
		for _, o := range out {
			closeToAll := true
			for i := 0; i < nT; i++ {
				if o.DistKnown(vecs[i]) > 2*d {
					closeToAll = false
					break
				}
			}
			if closeToAll {
				uniq++
				if q := o.UnknownCount(); float64(q) > 5*float64(d)/alpha {
					t.Fatalf("trial %d: %d ?s > 5D/α = %v", trial, q, 5*float64(d)/alpha)
				}
			}
		}
		if uniq != 1 {
			t.Fatalf("trial %d: %d outputs within 2D of all of VT, want exactly 1", trial, uniq)
		}
	}
}

func TestCoalesceTwoFarClusters(t *testing.T) {
	r := rng.New(3)
	m := 256
	c1 := bitvec.Random(r, m)
	c2 := bitvec.Random(r, m) // ~128 away
	vecs := append(cluster(r, c1, 30, 2), cluster(r, c2, 30, 2)...)
	out := Coalesce(vecs, 4, 0.4)
	if len(out) != 2 {
		t.Fatalf("got %d outputs, want 2", len(out))
	}
	// each cluster has a unique nearby representative
	for _, c := range []bitvec.Vector{c1, c2} {
		found := 0
		for _, o := range out {
			if o.DistKnownVec(c) <= 8 {
				found++
			}
		}
		if found != 1 {
			t.Fatalf("%d representatives near a center", found)
		}
	}
}

func TestCoalesceNearbyClustersMerge(t *testing.T) {
	// Two clusters at distance ≤ 5D must merge into one wildcard vector.
	r := rng.New(4)
	m := 200
	c1 := bitvec.Random(r, m)
	c2 := c1.Clone()
	c2.FlipRandom(r, 4) // within 5D for D=1... we use D=1, 5D=5 ≥ 4
	vecs := append(cluster(r, c1, 30, 0), cluster(r, c2, 30, 0)...)
	out := Coalesce(vecs, 1, 0.4)
	if len(out) != 1 {
		t.Fatalf("got %d outputs, want merged 1", len(out))
	}
	if q := out[0].UnknownCount(); q != 4 {
		t.Fatalf("merged vector has %d ?s, want 4", q)
	}
}

func TestCoalesceNoQualifyingBall(t *testing.T) {
	// All vectors isolated → everything removed, empty output.
	r := rng.New(5)
	var vecs []bitvec.Partial
	for i := 0; i < 20; i++ {
		vecs = append(vecs, bitvec.PartialOf(bitvec.Random(r, 256)))
	}
	out := Coalesce(vecs, 2, 0.5)
	if len(out) != 0 {
		t.Fatalf("got %d outputs from pure noise, want 0", len(out))
	}
}

func TestCoalesceOrderInvariant(t *testing.T) {
	r := rng.New(6)
	m := 128
	c1 := bitvec.Random(r, m)
	c2 := bitvec.Random(r, m)
	vecs := append(cluster(r, c1, 20, 2), cluster(r, c2, 20, 2)...)
	out1 := Coalesce(vecs, 4, 0.3)
	// reverse the input
	rev := make([]bitvec.Partial, len(vecs))
	for i := range vecs {
		rev[len(vecs)-1-i] = vecs[i]
	}
	out2 := Coalesce(rev, 4, 0.3)
	if len(out1) != len(out2) {
		t.Fatalf("order dependence: %d vs %d outputs", len(out1), len(out2))
	}
	for i := range out1 {
		if !out1[i].Equal(out2[i]) {
			t.Fatalf("order dependence at output %d", i)
		}
	}
}

func TestCoalesceEmptyInput(t *testing.T) {
	if out := Coalesce(nil, 3, 0.5); out != nil {
		t.Fatal("non-nil output for empty input")
	}
}

func TestCoalesceDuplicateMultiset(t *testing.T) {
	// 10 identical copies: one output, equal to the vector, no ?s.
	v := bitvec.PartialOf(bitvec.Random(rng.New(7), 64))
	vecs := make([]bitvec.Partial, 10)
	for i := range vecs {
		vecs[i] = v
	}
	out := Coalesce(vecs, 0, 1.0)
	if len(out) != 1 || !out[0].Equal(v) {
		t.Fatalf("got %v", out)
	}
}

func TestCoalescePartialInputs(t *testing.T) {
	// Inputs with ?s: d~ ignores them, so vectors differing only in ?
	// placement cluster together.
	a := part(t, "0101????")
	b := part(t, "0101???1")
	c := part(t, "01011111")
	out := Coalesce([]bitvec.Partial{a, b, c, a, b, c}, 0, 0.9)
	if len(out) != 1 {
		t.Fatalf("got %d outputs", len(out))
	}
}

func TestCoalesceChainDoesNotOverMerge(t *testing.T) {
	// Chain c0 -c1- c2 where c0,c1 within 5D and c1,c2 within 5D but
	// c0,c2 beyond: merging c0,c1 wildcards the differing coords, which
	// can pull the merged vector within 5D of c2 (distances only shrink).
	// The theorem's uniqueness claim still must hold for a single planted
	// community; this test just pins the deterministic outcome.
	r := rng.New(8)
	m := 300
	c0 := bitvec.Random(r, m)
	c1 := c0.Clone()
	c1.FlipRandom(r, 5)
	c2 := c1.Clone()
	c2.FlipRandom(r, 5)
	vecs := append(cluster(r, c0, 20, 0), cluster(r, c1, 20, 0)...)
	vecs = append(vecs, cluster(r, c2, 20, 0)...)
	out := Coalesce(vecs, 1, 0.3)
	if len(out) < 1 || len(out) > 3 {
		t.Fatalf("%d outputs", len(out))
	}
	// determinism across repeated runs
	out2 := Coalesce(vecs, 1, 0.3)
	if len(out) != len(out2) {
		t.Fatal("nondeterministic")
	}
}

func BenchmarkCoalesce128x512(b *testing.B) {
	r := rng.New(9)
	center := bitvec.Random(r, 512)
	vecs := cluster(r, center, 64, 4)
	for i := 0; i < 64; i++ {
		vecs = append(vecs, bitvec.PartialOf(bitvec.Random(r, 512)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Coalesce(vecs, 8, 0.25)
	}
}
