package core

import (
	"fmt"
	"math"

	"tellme/internal/bitvec"
	"tellme/internal/probe"
)

// VirtualSpace is the ObjectSpace of Large Radius, Step 4: abstract
// object ℓ is a whole object group; its "value" is the index of a
// Coalesce candidate; probing it runs Select over the group's
// candidates.
type VirtualSpace struct {
	// GroupObjs[ℓ] lists the real object ids of group ℓ.
	GroupObjs [][]int
	// Cands[ℓ] is the candidate set B_ℓ (vectors over GroupObjs[ℓ]).
	Cands [][]bitvec.Partial
	// Bound is the Select distance bound for every group.
	Bound int
}

// Len implements ObjectSpace.
func (s *VirtualSpace) Len() int { return len(s.GroupObjs) }

// Probe implements ObjectSpace: one "logical probe" = one Select run.
func (s *VirtualSpace) Probe(pl *probe.Player, j int) uint32 {
	return uint32(SelectPartial(pl, s.GroupObjs[j], s.Cands[j], s.Bound))
}

// LargeRadius implements Algorithm Large Radius (Fig. 5) for the given
// players over the object coordinate set objs, with known alpha and
// distance bound d (intended for d = Ω(log n); the main dispatcher sends
// smaller d to SmallRadius).
//
// Returns out[p] as a Partial of length len(objs) (coordinate j is real
// object objs[j]); outputs may contain up to O(d/α) '?' entries, as the
// paper allows. Theorem 5.4: w.h.p. every (alpha,d)-typical player's
// output is within O(d/α) of its true vector, at polylog probing cost
// per player.
func LargeRadius(env *Env, players []int, objs []int, alpha float64, d int) []bitvec.Partial {
	out := make([]bitvec.Partial, env.N)
	if len(players) == 0 || len(objs) == 0 {
		return out
	}
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("core: LargeRadius alpha %v out of (0,1]", alpha))
	}
	env.count(CountLargeRadius)
	if !env.spanOff("largeradius") {
		defer env.spanPlayers("largeradius", players, "players", len(players), "objs", len(objs), "alpha", alpha, "d", d)()
	}
	tag := env.freshTag("lr")
	coin := env.Public.Stream(tag, 0)
	n := len(players)
	logn := math.Log(float64(env.N) + 1)

	// Step 1: partition objects into L ≈ GroupC·d/log n groups and assign
	// each player to k ≈ ⌈d/(αn)⌉ groups.
	groupCount := int(math.Ceil(env.Cfg.GroupC * float64(d) / logn))
	if groupCount < 1 {
		groupCount = 1
	}
	if groupCount > len(objs) {
		groupCount = len(objs)
	}
	sc := &env.scratch
	defer sc.release(sc.mark())
	local := sc.iota(len(objs))
	groupLocal := assignPartsArena(sc, coin, local, groupCount)
	groupObjs := sc.lists.Make(groupCount)
	for g, lcs := range groupLocal {
		groupObjs[g] = sc.a.Ints(len(lcs))
		for j, lc := range lcs {
			groupObjs[g][j] = objs[lc]
		}
	}

	memberships := int(math.Ceil(float64(d) / (alpha * float64(n))))
	if memberships < 1 {
		memberships = 1
	}
	if memberships > groupCount {
		memberships = groupCount
	}
	groupPlayers := make([][]int, groupCount)
	for _, p := range players {
		perm := coin.Perm(groupCount)
		for _, g := range perm[:memberships] {
			groupPlayers[g] = append(groupPlayers[g], p)
		}
	}

	// λ: the per-group distance bound. Typical players' distance on a
	// group concentrates around d/L ≈ log n/GroupC (Lemma 5.5).
	lambda := int(math.Ceil(env.Cfg.LambdaC*float64(d)/float64(groupCount))) + 4
	if lambda > d {
		lambda = d
	}
	// Coalesce distance: must stay well below the group size, or every
	// posted vector lands in one ball and clustering degenerates to
	// "lexicographically-first poster wins".
	coalD := int(env.Cfg.CoalDC * float64(lambda))
	if cap := len(objs) / (3 * groupCount); coalD > cap && cap >= 1 {
		coalD = cap
	}

	// Abort-path cleanup: Step 2 posts to deterministic per-group topics
	// that Step 3 normally drops; an abort between the two would leave
	// them for the next run on a shared board to misread. Re-drops of
	// already-dropped topics are no-ops.
	defer func() {
		if rec := recover(); rec != nil {
			for g := 0; g < groupCount; g++ {
				env.dropQuietly(fmt.Sprintf("%s/g%d", tag, g))
			}
			panic(rec)
		}
	}()

	// Step 2: Small Radius per group, with frequency parameter α/2 and
	// confidence parameter K = Θ(log n); players post their outputs.
	k := env.confidenceK()
	hinter, _ := env.Board.(postHinter)
	for g := 0; g < groupCount; g++ {
		env.checkAborted()
		if len(groupPlayers[g]) == 0 || len(groupObjs[g]) == 0 {
			continue
		}
		sr := smallRadiusPos(env, groupPlayers[g], groupObjs[g], alpha/2, lambda, k)
		topic := fmt.Sprintf("%s/g%d", tag, g)
		if hinter != nil {
			hinter.HintPosts(topic, len(groupPlayers[g]), 0)
		}
		for i, p := range groupPlayers[g] {
			env.Board.Post(topic, p, bitvec.PartialOf(sr[i]))
		}
	}

	// Step 3: Coalesce each group's posted vectors into at most O(1/α)
	// candidates (worst-case pairwise spread of typical outputs is
	// 11λ = 5λ + λ + 5λ; coalD above uses the realized ≈2λ scale).
	cands := make([][]bitvec.Partial, groupCount)
	for g := 0; g < groupCount; g++ {
		env.checkAborted()
		topic := fmt.Sprintf("%s/g%d", tag, g)
		postings := env.Board.Postings(topic)
		vecs := make([]bitvec.Partial, len(postings))
		for i, po := range postings {
			vecs[i] = po.Vec
		}
		env.count(CountCoalesce)
		b := Coalesce(vecs, coalD, alpha/2)
		if len(b) == 0 && len(vecs) > 0 {
			// Premise failed for this group; keep the most popular raw
			// vectors (capped) so Step 4 still has candidates.
			b = env.Board.PopularVectors(topic, 1)
			if cap := int(math.Ceil(2/alpha)) + 1; len(b) > cap {
				b = b[:cap]
			}
		}
		if len(b) == 0 {
			// Nobody posted (empty group): a single all-? candidate keeps
			// those coordinates undetermined.
			b = []bitvec.Partial{bitvec.NewPartial(len(groupObjs[g]))}
		}
		cands[g] = b
		env.Board.DropTopic(topic)
	}

	// Step 4: Zero Radius over the virtual objects. The Select bound per
	// logical probe covers d~(v*, v(p)) ≤ 2·coalD + 5λ; the default knob
	// trims it to 5λ in practice — Select degrades gracefully if the
	// bound is exceeded (it falls back to nearest-on-probed-set).
	selBound := coalD + lambda
	space := &VirtualSpace{GroupObjs: groupObjs, Cands: cands, Bound: selBound}
	choice := zeroRadiusFlat(env, players, space, alpha)

	// Stitch each player's chosen candidates into a full output vector.
	// posOf was (re)filled for the full player set by the ZeroRadius
	// call above, so it maps into choice's packed rows. The outputs
	// escape to the caller, so their planes are heap-allocated — but as
	// two backing arrays for all players rather than two per player.
	posOf := sc.posOf
	wd := bitvec.WordsFor(len(objs))
	valB := make([]uint64, len(players)*wd)
	knownB := make([]uint64, len(players)*wd)
	env.phase(players, func(p int) {
		i := posOf[p]
		row := choice[i*groupCount : (i+1)*groupCount]
		w := bitvec.WrapPartial(len(objs), valB[i*wd:(i+1)*wd:(i+1)*wd], knownB[i*wd:(i+1)*wd:(i+1)*wd])
		for g := 0; g < groupCount; g++ {
			ci := int(row[g])
			if ci >= len(cands[g]) {
				ci = 0
			}
			bg := cands[g][ci]
			for j, lc := range groupLocal[g] {
				if v := bg.Get(j); v != bitvec.Unknown {
					w.SetBit(lc, v)
				}
			}
		}
		out[p] = w
	})
	return out
}
