package core

// Parameter-grid integration tests: the Fig. 1 dispatcher across a
// matrix of (n, m, α, D) configurations, asserting the regime-specific
// error guarantee in each cell. Slow cells are skipped with -short.

import (
	"fmt"
	"testing"

	"tellme/internal/bitvec"
	"tellme/internal/prefs"
)

type gridCase struct {
	n, m  int
	alpha float64
	d     int
	// errBound is the guarantee checked: exact for D=0, 5D for the
	// SmallRadius regime, 8·D/α for the LargeRadius regime.
	errBound int
	slow     bool
}

func gridCases() []gridCase {
	mk := func(n, m int, alpha float64, d int, slow bool) gridCase {
		g := gridCase{n: n, m: m, alpha: alpha, d: d, slow: slow}
		switch DispatchRegime(n, d) {
		case RegimeZero:
			g.errBound = 0
		case RegimeSmall:
			g.errBound = 5 * d
		default:
			g.errBound = int(8 * float64(d) / alpha)
		}
		return g
	}
	return []gridCase{
		// D = 0 across shapes and fractions
		mk(128, 128, 0.5, 0, false),
		mk(128, 512, 0.5, 0, false),
		mk(512, 128, 0.25, 0, false),
		mk(256, 256, 0.75, 0, false),
		// small-radius regime
		mk(128, 128, 0.5, 2, false),
		mk(256, 256, 0.5, 5, false),
		mk(256, 128, 0.75, 3, false),
		mk(192, 384, 0.5, 4, true),
		// large-radius regime
		mk(256, 256, 0.5, 16, false),
		mk(256, 256, 0.5, 48, true),
		mk(512, 512, 0.5, 96, true),
		mk(256, 256, 0.25, 24, true),
	}
}

func TestMainAcrossParameterGrid(t *testing.T) {
	for i, g := range gridCases() {
		g := g
		t.Run(fmt.Sprintf("n%d_m%d_a%v_D%d", g.n, g.m, g.alpha, g.d), func(t *testing.T) {
			if g.slow && testing.Short() {
				t.Skip("slow cell")
			}
			in := prefs.Planted(g.n, g.m, g.alpha, g.d, uint64(1000+i))
			env, _ := newTestEnv(t, in, uint64(2000+i))
			out := Main(env, g.alpha, g.d)
			comm := in.Communities[0].Members
			worst := 0
			for _, p := range comm {
				if e := in.Err(p, out[p]); e > worst {
					worst = e
				}
			}
			if worst > g.errBound {
				t.Fatalf("discrepancy %d > bound %d (regime %v)",
					worst, g.errBound, DispatchRegime(g.n, g.d))
			}
		})
	}
}

func TestLargeRadiusMultiMembership(t *testing.T) {
	// When D > α·n each player joins ⌈D/(αn)⌉ > 1 groups (Fig. 5 Step 1).
	// n = 64, α = 0.25, D = 32 gives memberships = 2.
	in := prefs.Planted(64, 256, 0.25, 32, 70)
	env, _ := newTestEnv(t, in, 71)
	out := LargeRadius(env, allPlayers(in.N), seqObjs(in.M), 0.25, 32)
	comm := in.Communities[0].Members
	for _, p := range comm {
		if e := in.Err(p, out[p]); e > int(8*32/0.25) {
			t.Fatalf("member %d error %d with multi-membership", p, e)
		}
	}
	// every player must have a full-length output
	for p := 0; p < in.N; p++ {
		if out[p].Len() != in.M {
			t.Fatalf("player %d output incomplete", p)
		}
	}
}

func TestZeroRadiusVirtualSpaceDirect(t *testing.T) {
	// ZeroRadius over a VirtualSpace without going through LargeRadius:
	// two groups with hand-built candidate sets; an identical community
	// must converge on the candidates matching its vector.
	in := prefs.Identical(96, 8, 0.5, 72)
	env, _ := newTestEnv(t, in, 73)
	center := in.Communities[0].Center
	// group 0 = objects 0..3, group 1 = objects 4..7
	c0 := []int{0, 1, 2, 3}
	c1 := []int{4, 5, 6, 7}
	inverted := func(objs []int) bitvec.Partial {
		v := center.Project(objs)
		for j := range objs {
			v.Flip(j)
		}
		return bitvec.PartialOf(v)
	}
	space := &VirtualSpace{
		GroupObjs: [][]int{c0, c1},
		Cands: [][]bitvec.Partial{
			{bitvec.PartialOf(center.Project(c0)), inverted(c0)},
			{inverted(c1), bitvec.PartialOf(center.Project(c1))},
		},
		Bound: 0,
	}
	out := ZeroRadius(env, allPlayers(in.N), space, 0.5)
	for _, p := range in.Communities[0].Members {
		if out[p][0] != 0 || out[p][1] != 1 {
			t.Fatalf("member %d chose candidates (%d,%d), want (0,1)", p, out[p][0], out[p][1])
		}
	}
}
