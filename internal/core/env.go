// Package core implements the paper's algorithms: Select and RSelect
// (Choose Closest), ZeroRadius, SmallRadius, Coalesce, LargeRadius, the
// main dispatcher, and the unknown-parameter wrappers.
//
// # Execution model
//
// Algorithms run over an Env: a billboard, a probe engine, a parallel
// runner and a public-coin randomness source. All random partitions are
// public-coin (derived from Env.Public with a per-invocation tag), so
// every player computes the same partitions without communication, and
// whole runs are reproducible from one seed. Player-private randomness
// (RSelect sampling) comes from per-player streams.
//
// # Cost accounting
//
// The paper measures cost in probing rounds: players probe in parallel,
// one probe per round, so an algorithm's round count is the maximum
// number of probes any single player performs. Callers measure this by
// snapshotting the probe engine around an algorithm invocation (the
// facade in package tellme does this); the algorithms themselves only
// probe through their *probe.Player handles.
package core

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tellme/internal/bitvec"
	"tellme/internal/boardclient"
	"tellme/internal/ints"
	"tellme/internal/probe"
	"tellme/internal/rng"
	"tellme/internal/sim"
	"tellme/internal/telemetry"
	"tellme/internal/trace"
)

// Config holds the constants the paper leaves as O(·) knobs. The zero
// value is not usable; call DefaultConfig.
type Config struct {
	// LeafC scales the ZeroRadius leaf threshold: recursion stops when
	// min(|P|,|O|) < LeafC·ln(n)/α (paper: 8c·ln(n)/α).
	LeafC float64
	// PartC scales the SmallRadius partition count: s = ceil(PartC·D^{3/2})
	// (paper: 100·d^{3/2} makes Lemma 4.1's failure probability < 1/2;
	// much smaller constants work in practice — see experiment E11).
	PartC float64
	// K is the SmallRadius confidence parameter (number of independent
	// iterations). K ≤ 0 means ceil(log2 n)+1.
	K int
	// GroupC scales the LargeRadius group count: cD/log n groups
	// (paper's c). Larger GroupC means smaller groups.
	GroupC float64
	// RSelC scales RSelect's per-pair sample count c·log n.
	RSelC float64
	// LambdaC scales LargeRadius's per-group distance bound:
	// λ = ceil(LambdaC·D/groups)+4, capped at D. The paper's Lemma 5.5
	// only fixes λ = O(log n); LambdaC sets the concentration margin
	// over the mean D/groups.
	LambdaC float64
	// CoalDC scales the Coalesce distance parameter in LargeRadius:
	// coalD = CoalDC·λ. The worst-case chain bound is 11λ, but at
	// simulator scales that can exceed the group size and degenerate
	// Coalesce (every vector in one ball); the realized pairwise spread
	// of typical outputs is ≈ 2λ, so a small constant suffices.
	CoalDC float64
	// VoteFrac is the ZeroRadius vote threshold as a fraction of α:
	// a vector needs VoteFrac·α·|P''| votes to become a candidate. The
	// paper uses 1/2 together with a leaf size of 8c·ln(n)/α; with the
	// simulator's cheaper LeafC the default is 1/4, which restores the
	// Chernoff margin at small leaves for the same O(1/α) candidate
	// bound (ablated in E11c).
	VoteFrac float64
}

// DefaultConfig returns constants that satisfy the theorems' premises at
// the simulator's scales while keeping probing budgets practical.
func DefaultConfig() Config {
	return Config{
		LeafC:    2,
		PartC:    1,
		K:        0,
		GroupC:   1,
		RSelC:    4,
		LambdaC:  2,
		CoalDC:   3,
		VoteFrac: 0.25,
	}
}

// Env bundles the shared state one algorithm run executes against.
type Env struct {
	Board  boardclient.Interface
	Engine *probe.Engine
	Run    sim.PhaseRunner
	// Public is the shared-coin source: all players derive identical
	// partitions from it.
	Public rng.Source
	// N and M are the instance dimensions.
	N, M int
	Cfg  Config

	topicSeq atomic.Int64
	counters [nCounters]atomic.Int64

	// scratch is the coordinator-side region allocator (see coScratch).
	// Like the rest of the coordinator state it is single-goroutine:
	// only the goroutine driving the algorithms may run them on one Env.
	scratch coScratch

	// Trace, when non-nil, receives structured events from each
	// sub-algorithm invocation (entry parameters and probe consumption).
	Trace *trace.Log
	// Telemetry, when non-nil, accumulates per-sub-algorithm cost
	// counters ("core.<kind>.{calls,probes,ns}") from the same spans
	// that feed Trace — the registry behind the -telemetry cost
	// breakdown of cmd/experiments.
	Telemetry *telemetry.Registry

	telOnce  sync.Once
	spanTels [nSpanKinds]spanCounters

	// ctx/done carry the run's cancellation signal, taken from the probe
	// engine in NewEnv. done is nil for an uncancellable run — every
	// check is then a single nil comparison. Read-only after NewEnv.
	ctx  context.Context
	done <-chan struct{}

	// cur is the innermost sub-algorithm kind entered so far, recorded
	// by spanPlayers and reported through ActiveKind so an abort can say
	// which phase it interrupted. Written only by the coordinator
	// goroutine (spans start and end between phases, never inside one).
	cur string

	// ckOuts/ckEpochs are the last completed-epoch checkpoint: the
	// epoch-structured algorithms (Anytime after each completed phase,
	// Refresh at entry with the stale inputs) save a consistent output
	// set here so an abort mid-epoch can report the last *completed*
	// epoch instead of nothing — never a mix of a half-written epoch
	// with the prior one. Coordinator-goroutine only, written between
	// phases; the facade reads it after the run unwinds.
	ckOuts   []bitvec.Partial
	ckEpochs int
}

// Abort is the panic payload the Env helpers use to unwind a cancelled
// or failed run out of the recursive algorithms: the algorithms return
// values, not errors, so a mid-recursion failure has no error path and
// unwinds instead. The facade (package tellme) recovers it at the run
// boundary and converts it into a *RunError; code between the two — the
// algorithm bodies — only needs panic-safety, which they have by
// construction (the billboard cleanup is handled by the abort-cleanup
// defers in the topic-owning algorithms).
type Abort struct {
	// Err is the underlying failure: a cancellation cause such as
	// context.DeadlineExceeded, a *sim.PanicError from player code, or a
	// transport error like *netboard.TransportError.
	Err error
}

// Error implements error.
func (a *Abort) Error() string { return fmt.Sprintf("core: run aborted: %v", a.Err) }

// Unwrap exposes the failure to errors.Is/As.
func (a *Abort) Unwrap() error { return a.Err }

// phase runs one fallible phase over the Env's context and unwinds with
// *Abort when it fails. All algorithm phase bodies go through this (or
// Clock.Run at the facade level), so cancellation and player panics
// surface at the run boundary no matter how deep the recursion is.
func (env *Env) phase(players []int, f func(p int)) {
	if err := env.Run.Phase(env.ctx, players, f); err != nil {
		panic(&Abort{Err: err})
	}
}

// checkAborted unwinds with *Abort if the run's context is done. The
// coordinator loops call it between phases so a cancelled run stops at
// the next loop boundary even when no player probes again (phases and
// probes have their own checks).
func (env *Env) checkAborted() {
	if env.done == nil {
		return
	}
	select {
	case <-env.done:
		panic(&Abort{Err: context.Cause(env.ctx)})
	default:
	}
}

// ActiveKind returns the innermost sub-algorithm kind entered so far
// ("" when tracing and telemetry are both disabled or nothing ran); the
// facade stamps it into RunError.Phase.
func (env *Env) ActiveKind() string { return env.cur }

// Context returns the run's context (nil for an uncancellable run).
func (env *Env) Context() context.Context { return env.ctx }

// saveCheckpoint records outs as the outputs of the last completed
// epoch (epochs completed so far). The slice header is copied so later
// element reassignments by the caller cannot tear the checkpoint; the
// elements themselves must be immutable once stored (the callers only
// ever *replace* entries, never mutate them in place).
func (env *Env) saveCheckpoint(outs []bitvec.Partial, epochs int) {
	env.ckOuts = append(env.ckOuts[:0], outs...)
	env.ckEpochs = epochs
}

// Checkpoint returns the last completed-epoch outputs and the number of
// completed epochs (nil, 0 when the run's algorithm keeps no epoch
// checkpoints or none completed). Valid only after the run has unwound;
// the caller may keep the slice.
func (env *Env) Checkpoint() ([]bitvec.Partial, int) {
	return env.ckOuts, env.ckEpochs
}

// dropQuietly removes a topic, swallowing any failure: it runs on the
// abort path, where the transport may be the very thing that died, and
// a cleanup panic must not mask the original abort cause.
func (env *Env) dropQuietly(name string) {
	defer func() { _ = recover() }()
	env.Board.DropTopic(name)
}

// spanCounters are one span kind's pre-resolved instruments. Spans run
// inside the recursion (hundreds to tens of thousands per run), so the
// registry's get-or-create lookup must not happen per span.
type spanCounters struct {
	calls, probes, ns *telemetry.Counter
}

// The span kinds used by the algorithms, indexable without a map.
const (
	spanRefresh = iota
	spanSmallRadius
	spanZeroRadius
	spanLargeRadius
	spanUnknownD
	nSpanKinds
)

var spanKindNames = [nSpanKinds]string{
	spanRefresh:     "refresh",
	spanSmallRadius: "smallradius",
	spanZeroRadius:  "zeroradius",
	spanLargeRadius: "largeradius",
	spanUnknownD:    "unknownd",
}

func spanKindIndex(kind string) int {
	for i, name := range spanKindNames {
		if name == kind {
			return i
		}
	}
	return -1
}

// spanCountersFor returns the cached instruments for kind, resolving
// all known kinds once on first use. Unknown kinds (none today) fall
// back to a direct registry lookup.
func (env *Env) spanCountersFor(kind string) spanCounters {
	tel := env.Telemetry
	i := spanKindIndex(kind)
	if i < 0 {
		return spanCounters{
			calls:  tel.Counter("core." + kind + ".calls"),
			probes: tel.Counter("core." + kind + ".probes"),
			ns:     tel.Counter("core." + kind + ".ns"),
		}
	}
	env.telOnce.Do(func() {
		for k, name := range spanKindNames {
			env.spanTels[k] = spanCounters{
				calls:  tel.Counter("core." + name + ".calls"),
				probes: tel.Counter("core." + name + ".probes"),
				ns:     tel.Counter("core." + name + ".ns"),
			}
		}
	})
	return env.spanTels[i]
}

// spanNoop is the shared disabled-span closure, so disabled runs do not
// allocate one closure per sub-algorithm invocation.
var spanNoop = func() {}

// spanOff reports whether spans are disabled, recording the active kind
// (for abort reporting) when they are. Hot sub-algorithms call it
// before span/spanPlayers because the variadic kv boxes its arguments
// at the call site — a real allocation even when the span itself would
// be free, and ZeroRadius runs thousands of times per recursion.
func (env *Env) spanOff(kind string) bool {
	if env.Trace == nil && env.Telemetry == nil {
		env.cur = kind
		return true
	}
	return false
}

// span emits a start event and returns a closure that emits the
// matching end event with the probes consumed and wall time spent in
// between. With both Trace and Telemetry nil the span is free.
func (env *Env) span(kind string, kv ...any) func() {
	return env.spanPlayers(kind, nil, kv...)
}

// spanPlayers is span with the probe measurement restricted to the
// participating players (nil means all). Sub-algorithms that run on a
// small group pass it so a span costs two O(group) counter sweeps, not
// two O(n) ones — ZeroRadius runs thousands of times per recursion.
// Exact because players only probe their own grades, so a span's
// consumption is entirely attributed to its participants.
func (env *Env) spanPlayers(kind string, players []int, kv ...any) func() {
	env.cur = kind
	enabled := env.Telemetry != nil
	if env.Trace == nil && !enabled {
		return spanNoop
	}
	before := env.chargedSum(players)
	var sc spanCounters
	var start time.Time
	if enabled {
		sc = env.spanCountersFor(kind)
		sc.calls.Inc()
		start = time.Now()
	}
	if env.Trace != nil {
		env.Trace.Event(kind+".start", kv...)
	}
	return func() {
		probes := env.chargedSum(players) - before
		if env.Trace != nil {
			env.Trace.Event(kind+".end", "probes", probes)
		}
		if enabled {
			sc.probes.Add(probes)
			sc.ns.Add(time.Since(start).Nanoseconds())
		}
	}
}

func (env *Env) chargedSum(players []int) int64 {
	if players == nil {
		return env.Engine.TotalCharged()
	}
	return env.Engine.ChargedSum(players)
}

// Counter identifies one invocation counter on an Env.
type Counter int

// Invocation counters, incremented once per (possibly nested) call.
const (
	CountZeroRadius Counter = iota
	CountSmallRadius
	CountLargeRadius
	CountCoalesce
	nCounters
)

// String names the counter.
func (c Counter) String() string {
	switch c {
	case CountZeroRadius:
		return "ZeroRadius"
	case CountSmallRadius:
		return "SmallRadius"
	case CountLargeRadius:
		return "LargeRadius"
	case CountCoalesce:
		return "Coalesce"
	default:
		return "unknown"
	}
}

func (env *Env) count(c Counter) { env.counters[c].Add(1) }

// RunCounts reports how many times each sub-algorithm ran on this Env —
// useful for understanding where an algorithm's probes went (e.g. one
// LargeRadius call fans out into Θ(D/log n) SmallRadius calls, each
// fanning out into K·s ZeroRadius calls).
func (env *Env) RunCounts() map[string]int64 {
	out := make(map[string]int64, int(nCounters))
	for c := Counter(0); c < nCounters; c++ {
		out[c.String()] = env.counters[c].Load()
	}
	return out
}

// NewEnv builds an execution environment. runner may be nil for a
// default parallel runner.
func NewEnv(e *probe.Engine, runner sim.PhaseRunner, public rng.Source, cfg Config) *Env {
	if runner == nil {
		runner = sim.NewRunner(0)
	}
	env := &Env{
		Board:  e.Board(),
		Engine: e,
		Run:    runner,
		Public: public,
		N:      e.Instance().N,
		M:      e.Instance().M,
		Cfg:    cfg,
	}
	// The engine's context (probe.WithContext) is the run's context: the
	// coordinator loops observe the same cancellation the players do.
	if ctx := e.Context(); ctx != nil && ctx.Done() != nil {
		env.ctx = ctx
		env.done = ctx.Done()
	}
	return env
}

// freshTag returns a unique topic prefix for one algorithm invocation,
// so nested and repeated invocations never collide on the billboard.
// Built in one allocation: ZeroRadius mints a tag per call, thousands
// of times per recursion.
func (env *Env) freshTag(kind string) string {
	var buf [24]byte
	b := append(buf[:0], kind...)
	b = append(b, '#')
	b = strconv.AppendInt(b, env.topicSeq.Add(1), 10)
	return string(b)
}

// leafThreshold is the ZeroRadius recursion cutoff for the given α.
func (env *Env) leafThreshold(alpha float64) int {
	t := int(math.Ceil(env.Cfg.LeafC * math.Log(float64(env.N)+1) / alpha))
	if t < 2 {
		t = 2
	}
	return t
}

// confidenceK resolves the SmallRadius iteration count.
func (env *Env) confidenceK() int {
	if env.Cfg.K > 0 {
		return env.Cfg.K
	}
	return int(math.Ceil(math.Log2(float64(env.N)+1))) + 1
}

// allPlayers returns [0, n).
func allPlayers(n int) []int { return ints.Iota(n) }

// splitHalf randomly partitions ids into two halves of sizes ⌈k/2⌉ and
// ⌊k/2⌋ using the given public-coin stream. The halves are a fresh
// shuffled copy: callers keep their original order, and — load-bearing
// for determinism — a recursive caller's own slice keeps its positional
// order when the halves are split further (posted value vectors are
// positional, and the deterministic vote order compares them
// lexicographically).
func splitHalf(r *rng.Rand, ids []int) (a, b []int) {
	shuffled := append([]int(nil), ids...)
	r.Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	half := (len(shuffled) + 1) / 2
	return shuffled[:half], shuffled[half:]
}

// assignParts assigns each of the ids independently and uniformly to one
// of s parts (the paper's random object partition). All parts share one
// backing array, allocated once, instead of s independently grown
// slices.
func assignParts(r *rng.Rand, ids []int, s int) [][]int {
	assign := make([]int, len(ids))
	counts := make([]int, s)
	for i := range ids {
		a := r.Intn(s)
		assign[i] = a
		counts[a]++
	}
	backing := make([]int, len(ids))
	parts := make([][]int, s)
	off := 0
	for a, c := range counts {
		parts[a] = backing[off : off : off+c]
		off += c
	}
	for i, id := range ids {
		a := assign[i]
		parts[a] = append(parts[a], id)
	}
	return parts
}
