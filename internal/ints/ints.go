// Package ints holds tiny integer-slice utilities shared across the
// simulator, the experiments and the benchmarks.
package ints

// Iota returns the slice [0, 1, …, n-1]. It is the canonical "all
// players" / "all objects" id list; previously every package grew its
// own copy.
func Iota(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
