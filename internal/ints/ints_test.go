package ints

import "testing"

func TestIota(t *testing.T) {
	if got := Iota(0); len(got) != 0 {
		t.Fatalf("Iota(0) = %v", got)
	}
	got := Iota(4)
	for i, v := range got {
		if v != i {
			t.Fatalf("Iota(4) = %v", got)
		}
	}
}
