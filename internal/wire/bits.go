package wire

import (
	"encoding/json"
	"fmt"

	"tellme/internal/bitvec"
)

// Bits is the wire form of a bitvec.Partial. In JSON it is the
// historical '0'/'1'/'?' string (byte-compatible with the pre-codec
// protocol, curl-debuggable); in binary it is the packed value/known
// planes, copied straight from the in-memory layout.
type Bits struct {
	P bitvec.Partial
}

// MarshalJSON renders the '0'/'1'/'?' string form.
func (b Bits) MarshalJSON() ([]byte, error) {
	return json.Marshal(b.P.String())
}

// UnmarshalJSON parses the '0'/'1'/'?' string form.
func (b *Bits) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	p, err := bitvec.PartialFromString(s)
	if err != nil {
		return fmt.Errorf("bad vector %q: %v", truncate(s, 32), err)
	}
	b.P = p
	return nil
}

// AppendBitsString binary-encodes a vector string field that the
// endpoint's structs keep as a plain Go string ('0'/'1' preference
// bits, '0'/'1'/'?' reconstructions — the serve front's shape). Valid
// strings travel packed (flag 0 + bit planes, 8x smaller); anything
// else travels raw (flag 1), so an invalid string survives a binary
// round trip exactly as it survives a JSON one and the server's own
// validation stays the single authority on rejecting it.
func AppendBitsString(dst []byte, s string) []byte {
	if p, err := bitvec.PartialFromString(s); err == nil {
		dst = append(dst, 0)
		return AppendPartial(dst, p)
	}
	dst = append(dst, 1)
	return AppendString(dst, s)
}

// BitsString decodes AppendBitsString's encoding back to the string.
func (r *Reader) BitsString() string {
	switch flag := r.Byte(); flag {
	case 0:
		return r.Partial().String()
	case 1:
		return r.String()
	default:
		r.fail("bad bits-string flag %d", flag)
		return ""
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
