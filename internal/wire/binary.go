package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"tellme/internal/bitvec"
)

// Binary payload primitives. Everything is little-endian; counts and
// non-negative integers are uvarints; bulk numeric data is packed
// fixed-width little-endian arrays so encode/decode is a bounds check
// plus a copy. Slices that distinguish nil from empty on the JSON side
// (voters, vals, batch objects, reply lists) are length-prefixed with
// count+1 — prefix 0 means a nil slice — so a binary round trip
// preserves exactly what a JSON round trip preserves and the
// differential fuzz oracle can require deep equality.

// AppendUint appends a uvarint.
func AppendUint(dst []byte, x uint64) []byte {
	return binary.AppendUvarint(dst, x)
}

// AppendBool appends one byte (0 or 1).
func AppendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// AppendFloat appends a float64 as its IEEE-754 bits, little-endian.
func AppendFloat(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

// AppendString appends a uvarint length followed by the raw bytes.
func AppendString(dst []byte, s string) []byte {
	dst = AppendUint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendInts appends a non-negative int slice: count+1 (0 = nil), then
// packed uint32 little-endian elements. Values must fit in uint32
// (players and objects are bounded by N and M, far below 2³²); an
// out-of-range value panics — it cannot arise from a validated board.
func AppendInts(dst []byte, xs []int) []byte {
	if xs == nil {
		return AppendUint(dst, 0)
	}
	dst = AppendUint(dst, uint64(len(xs))+1)
	for _, x := range xs {
		if x < 0 || int64(x) > math.MaxUint32 {
			panic(fmt.Sprintf("wire: int %d outside uint32 range", x))
		}
		dst = binary.LittleEndian.AppendUint32(dst, uint32(x))
	}
	return dst
}

// AppendUint32s appends a uint32 slice: count+1 (0 = nil), then packed
// little-endian elements.
func AppendUint32s(dst []byte, xs []uint32) []byte {
	if xs == nil {
		return AppendUint(dst, 0)
	}
	dst = AppendUint(dst, uint64(len(xs))+1)
	for _, x := range xs {
		dst = binary.LittleEndian.AppendUint32(dst, x)
	}
	return dst
}

// appendWords appends packed uint64 words without a count prefix (the
// caller's bit length implies the word count).
func appendWords(dst []byte, ws []uint64) []byte {
	for _, w := range ws {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	return dst
}

// AppendVector appends a total vector: uvarint bit length, then its
// packed words — the in-memory bit-plane layout, copied straight out.
func AppendVector(dst []byte, v bitvec.Vector) []byte {
	dst = AppendUint(dst, uint64(v.Len()))
	return appendWords(dst, v.Words())
}

// AppendPartial appends a partial vector: uvarint bit length, then the
// packed value plane and known plane back to back.
func AppendPartial(dst []byte, p bitvec.Partial) []byte {
	dst = AppendUint(dst, uint64(p.Len()))
	val, known := p.Planes()
	dst = appendWords(dst, val)
	return appendWords(dst, known)
}

// Reader decodes a binary payload with a sticky error: after any
// malformed field every further read returns zero values, so message
// decoders read fields unconditionally and the codec checks Close once.
// All returned slices and strings are copies — nothing aliases the
// input buffer, which goes back to the pool right after decoding.
type Reader struct {
	data []byte
	err  error
}

// NewReader wraps a binary payload (after the frame header).
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the sticky decode error, if any.
func (r *Reader) Err() error { return r.err }

// Close verifies the payload was fully consumed and returns the sticky
// error (trailing garbage is an error: a length-prefixed format has no
// legitimate tail).
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if len(r.data) != 0 {
		return fmt.Errorf("wire: %d trailing bytes after message", len(r.data))
	}
	return nil
}

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: "+format, args...)
		r.data = nil
	}
}

// Uint reads a uvarint.
func (r *Reader) Uint() uint64 {
	if r.err != nil {
		return 0
	}
	x, n := binary.Uvarint(r.data)
	if n <= 0 {
		r.fail("truncated uvarint")
		return 0
	}
	r.data = r.data[n:]
	return x
}

// Int reads a uvarint and narrows it to a non-negative int.
func (r *Reader) Int() int {
	x := r.Uint()
	if x > math.MaxInt32 && uint64(int(x)) != x {
		r.fail("integer %d overflows int", x)
		return 0
	}
	return int(x)
}

// Byte reads one raw byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.data) < 1 {
		r.fail("truncated byte")
		return 0
	}
	b := r.data[0]
	r.data = r.data[1:]
	return b
}

// Bool reads one byte as a bool (anything nonzero is true).
func (r *Reader) Bool() bool { return r.Byte() != 0 }

// Float reads a little-endian IEEE-754 float64.
func (r *Reader) Float() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.data) < 8 {
		r.fail("truncated float64")
		return 0
	}
	bits := binary.LittleEndian.Uint64(r.data)
	r.data = r.data[8:]
	return math.Float64frombits(bits)
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Uint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.data)) {
		r.fail("string length %d exceeds %d remaining bytes", n, len(r.data))
		return ""
	}
	s := string(r.data[:n])
	r.data = r.data[n:]
	return s
}

// count reads a count+1 prefix: (0, false) for nil, (k, true) for a
// slice of length k whose elements take elemSize bytes each — the size
// check up front keeps a hostile count from allocating unboundedly.
func (r *Reader) count(elemSize int) (int, bool) {
	c := r.Uint()
	if r.err != nil || c == 0 {
		return 0, false
	}
	n := c - 1
	if n > uint64(len(r.data))/uint64(elemSize) && elemSize > 0 {
		r.fail("count %d exceeds %d remaining bytes", n, len(r.data))
		return 0, false
	}
	return int(n), true
}

// Ints reads a slice written by AppendInts (nil for prefix 0).
func (r *Reader) Ints() []int {
	n, ok := r.count(4)
	if !ok {
		return nil
	}
	xs := make([]int, n)
	for i := range xs {
		xs[i] = int(binary.LittleEndian.Uint32(r.data[4*i:]))
	}
	r.data = r.data[4*n:]
	return xs
}

// Uint32s reads a slice written by AppendUint32s (nil for prefix 0).
func (r *Reader) Uint32s() []uint32 {
	n, ok := r.count(4)
	if !ok {
		return nil
	}
	xs := make([]uint32, n)
	for i := range xs {
		xs[i] = binary.LittleEndian.Uint32(r.data[4*i:])
	}
	r.data = r.data[4*n:]
	return xs
}

// words reads n packed uint64 words.
func (r *Reader) words(n int) []uint64 {
	if r.err != nil {
		return nil
	}
	if uint64(n)*8 > uint64(len(r.data)) {
		r.fail("%d plane words exceed %d remaining bytes", n, len(r.data))
		return nil
	}
	ws := make([]uint64, n)
	for i := range ws {
		ws[i] = binary.LittleEndian.Uint64(r.data[8*i:])
	}
	r.data = r.data[8*n:]
	return ws
}

// Vector reads a total vector written by AppendVector.
func (r *Reader) Vector() bitvec.Vector {
	n := r.Int()
	ws := r.words(bitvec.WordsFor(n))
	if r.err != nil {
		return bitvec.Vector{}
	}
	return bitvec.VectorFromWords(n, ws)
}

// Partial reads a partial vector written by AppendPartial. The
// constructor clamps the planes (tail bits beyond the length, value
// bits without their known bit), so a hostile payload cannot produce a
// Partial violating the val ⊆ known invariant.
func (r *Reader) Partial() bitvec.Partial {
	n := r.Int()
	words := bitvec.WordsFor(n)
	val := r.words(words)
	known := r.words(words)
	if r.err != nil {
		return bitvec.Partial{}
	}
	return bitvec.PartialFromPlanes(n, val, known)
}
