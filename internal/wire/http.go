package wire

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"tellme/internal/telemetry"
)

// Media types of the two codecs. The binary media type carries an
// explicit format version parameter; a server that sees a version it
// does not implement answers 415 rather than guessing, and the client
// falls back to JSON (see DESIGN.md §15 for the v=N rules).
const (
	MediaJSON         = "application/json"
	MediaBinary       = "application/x-tellme-bin"
	ContentTypeBinary = MediaBinary + ";v=1"
)

// BodyKind classifies a request Content-Type.
type BodyKind int

const (
	// KindJSON: anything that is not the binary media type — servers
	// always accept JSON, and curl posting text/plain or nothing keeps
	// working exactly as before the codec existed.
	KindJSON BodyKind = iota
	// KindBinary: the binary media type at a version we speak.
	KindBinary
	// KindUnsupported: the binary media type at a version we do not
	// speak — the 415 case.
	KindUnsupported
)

// ClassifyContentType maps a Content-Type header to a BodyKind.
func ClassifyContentType(ct string) BodyKind {
	media, params := splitMedia(ct)
	if !strings.EqualFold(media, MediaBinary) {
		return KindJSON
	}
	if binaryParamOK(params) {
		return KindBinary
	}
	return KindUnsupported
}

// AcceptsBinary reports whether an Accept header asks for the binary
// media type at a version we speak. Absent or JSON-only Accept headers
// return false — the reply defaults to JSON.
func AcceptsBinary(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		media, params := splitMedia(part)
		if strings.EqualFold(media, MediaBinary) && binaryParamOK(params) {
			return true
		}
	}
	return false
}

// splitMedia separates "type/sub; k=v; ..." into the media type and its
// raw parameter list, trimming whitespace.
func splitMedia(header string) (media, params string) {
	media = header
	if i := strings.IndexByte(header, ';'); i >= 0 {
		media, params = header[:i], header[i+1:]
	}
	return strings.TrimSpace(media), params
}

// binaryParamOK reports whether the parameter list names binary version
// 1 (a bare media type without v counts as v=1 for Accept convenience).
func binaryParamOK(params string) bool {
	if strings.TrimSpace(params) == "" {
		return true
	}
	for _, p := range strings.Split(params, ";") {
		k, v, ok := strings.Cut(strings.TrimSpace(p), "=")
		if ok && strings.EqualFold(strings.TrimSpace(k), "v") {
			return strings.TrimSpace(v) == "1"
		}
	}
	return true
}

// Instruments is the per-endpoint wire telemetry: body sizes in and out
// plus encode/decode latency. The zero value (all nil) is a no-op, so
// servers without a registry thread it unconditionally.
type Instruments struct {
	BytesIn  *telemetry.Counter
	BytesOut *telemetry.Counter
	EncodeNs *telemetry.Histogram
	DecodeNs *telemetry.Histogram
}

// NewInstruments resolves the wire instruments for one endpoint:
// "<prefix>.bytes.{in,out}.<path>" counters and
// "<prefix>.{encode,decode}_ns.<path>" histograms, following the
// established "<prefix>.<metric>.<path>" registry convention. Returns
// the zero (no-op) Instruments on a nil registry.
func NewInstruments(reg *telemetry.Registry, prefix, path string) Instruments {
	if reg == nil {
		return Instruments{}
	}
	return Instruments{
		BytesIn:  reg.Counter(prefix + ".bytes.in." + path),
		BytesOut: reg.Counter(prefix + ".bytes.out." + path),
		EncodeNs: reg.Histogram(prefix+".encode_ns."+path, telemetry.MicroLatencyBuckets()),
		DecodeNs: reg.Histogram(prefix+".decode_ns."+path, telemetry.MicroLatencyBuckets()),
	}
}

// DecodeRequest reads and decodes a request body per its Content-Type:
// binary bodies use the binary codec (unless jsonOnly, the 415 pin),
// everything else decodes as JSON exactly as before the codec layer.
// On failure it returns the HTTP status to answer (415 or 400) and the
// error to include; on success status is 0.
func DecodeRequest(r *http.Request, v Message, jsonOnly bool, ins Instruments) (status int, err error) {
	codec := JSON
	switch ClassifyContentType(r.Header.Get("Content-Type")) {
	case KindBinary:
		if jsonOnly {
			return http.StatusUnsupportedMediaType,
				fmt.Errorf("binary codec disabled on this server; send %s", MediaJSON)
		}
		codec = Binary
	case KindUnsupported:
		return http.StatusUnsupportedMediaType,
			fmt.Errorf("unsupported %s version (server speaks %s)", MediaBinary, ContentTypeBinary)
	}
	buf := GetBuffer()
	defer PutBuffer(buf)
	data, err := ReadAll(*buf, r.Body)
	*buf = data[:0]
	if err != nil {
		return http.StatusBadRequest, fmt.Errorf("read body: %v", err)
	}
	ins.BytesIn.Add(int64(len(data)))
	start := time.Now()
	err = codec.Decode(data, v)
	ins.DecodeNs.ObserveSince(start)
	if err != nil {
		return http.StatusBadRequest, err
	}
	return 0, nil
}

// WriteReply encodes v per the request's Accept header — binary when
// the client asked for it (and the server is not jsonOnly), JSON
// otherwise — stamps Content-Type, and writes the body.
func WriteReply(w http.ResponseWriter, r *http.Request, v Message, jsonOnly bool, ins Instruments) {
	WriteReplyStatus(w, r, 0, v, jsonOnly, ins)
}

// WriteReplyStatus is WriteReply with an explicit HTTP status code
// (e.g. 201 for a join); status 0 means the implicit 200.
func WriteReplyStatus(w http.ResponseWriter, r *http.Request, status int, v Message, jsonOnly bool, ins Instruments) {
	codec := JSON
	if !jsonOnly && AcceptsBinary(r.Header.Get("Accept")) {
		codec = Binary
	}
	buf := GetBuffer()
	defer PutBuffer(buf)
	start := time.Now()
	data, err := codec.Append(*buf, v)
	ins.EncodeNs.ObserveSince(start)
	*buf = data[:0]
	if err != nil {
		http.Error(w, fmt.Sprintf("encode reply: %v", err), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", codec.ContentType())
	if status != 0 {
		w.WriteHeader(status)
	}
	if _, err := w.Write(data); err != nil {
		// Connection-level failure; nothing further to do.
		return
	}
	ins.BytesOut.Add(int64(len(data)))
}
