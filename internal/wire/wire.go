// Package wire is the pluggable encoding layer of the billboard wire
// protocol: every request/response body that netboard, the cluster
// fan-out and the serving front marshal goes through a Codec instead of
// a hardcoded encoding/json call.
//
// Two codecs exist. JSON is the default and is byte-compatible with the
// historical hand-rolled marshalling (vectors as '0'/'1'/'?' strings,
// json.Encoder framing with a trailing newline), so /debug endpoints
// and curl sessions keep working unchanged. Binary is a length-prefixed
// little-endian format that writes probe batches, lookup answers and
// topic snapshots as packed arrays, reusing the bit-plane layout of
// internal/bitvec so a large tally's planes go to the wire near
// zero-copy (see binary.go for the framing).
//
// Negotiation is explicit and fail-safe (DESIGN.md §15): a binary body
// is labelled Content-Type "application/x-tellme-bin;v=1", a client
// asks for a binary reply with the same media type in Accept, servers
// always accept JSON, and a server that does not speak binary answers
// 415 — which clients treat as "fall back to JSON", so mixed-version
// and mixed-codec clusters keep working mid-drain.
//
// Both codecs encode into caller-supplied byte slices; GetBuffer and
// PutBuffer pool sized scratch buffers so the hot request path reuses
// one buffer per request instead of allocating fresh encode/decode
// buffers (see the ReportAllocs benchmarks in netboard).
package wire

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Message is a wire body: any request or response struct that travels
// through a Codec. JSON encoding uses the struct's json tags (and
// custom marshalers such as Bits); binary encoding is hand-rolled per
// message via AppendBinary/DecodeBinary, discriminated by WireTag.
type Message interface {
	// WireTag identifies the message type inside the binary frame
	// header; the decoder rejects a frame whose tag does not match the
	// destination struct.
	WireTag() byte
	// AppendBinary appends the message's binary payload (no frame
	// header) to dst and returns the extended slice.
	AppendBinary(dst []byte) []byte
	// DecodeBinary reads the payload back from r. Implementations
	// read fields in AppendBinary order and rely on the Reader's
	// sticky error; the codec checks r.Err and full consumption.
	DecodeBinary(r *Reader)
}

// Codec encodes and decodes wire messages. Implementations are
// stateless and safe for concurrent use.
type Codec interface {
	// Name is the codec's flag/config name ("json", "binary").
	Name() string
	// ContentType is the HTTP media type of bodies this codec writes.
	ContentType() string
	// Append encodes v and appends it to dst, returning the extended
	// slice (dst's capacity is reused; pass a pooled buffer).
	Append(dst []byte, v Message) ([]byte, error)
	// Decode parses one encoded message into v.
	Decode(data []byte, v Message) error
}

// JSON is the historical codec: encoding/json over the message structs,
// framed exactly like json.Encoder (a trailing newline), so responses
// are byte-identical to the pre-codec implementation.
var JSON Codec = jsonCodec{}

// Binary is the length-prefixed packed little-endian codec.
var Binary Codec = binaryCodec{}

// ByName resolves a codec flag/config value. The empty string means
// JSON (the default).
func ByName(name string) (Codec, error) {
	switch name {
	case "", JSON.Name():
		return JSON, nil
	case Binary.Name():
		return Binary, nil
	default:
		return nil, fmt.Errorf("wire: unknown codec %q (want %q or %q)", name, JSON.Name(), Binary.Name())
	}
}

type jsonCodec struct{}

func (jsonCodec) Name() string        { return "json" }
func (jsonCodec) ContentType() string { return MediaJSON }

func (jsonCodec) Append(dst []byte, v Message) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return dst, err
	}
	dst = append(dst, b...)
	return append(dst, '\n'), nil
}

func (jsonCodec) Decode(data []byte, v Message) error {
	return json.Unmarshal(data, v)
}

// Binary frame header: magic "TB", a format version byte, and the
// message tag. The version byte is the v=N of the media type: bump it
// (and ContentTypeBinary) together when the framing changes
// incompatibly; see DESIGN.md §15 for the version rules.
const (
	binMagic0     = 'T'
	binMagic1     = 'B'
	binaryVersion = 1
	binHeaderLen  = 4
)

type binaryCodec struct{}

func (binaryCodec) Name() string        { return "binary" }
func (binaryCodec) ContentType() string { return ContentTypeBinary }

func (binaryCodec) Append(dst []byte, v Message) ([]byte, error) {
	dst = append(dst, binMagic0, binMagic1, binaryVersion, v.WireTag())
	return v.AppendBinary(dst), nil
}

func (binaryCodec) Decode(data []byte, v Message) error {
	if len(data) < binHeaderLen || data[0] != binMagic0 || data[1] != binMagic1 {
		return fmt.Errorf("wire: not a binary frame (%d bytes)", len(data))
	}
	if data[2] != binaryVersion {
		return fmt.Errorf("wire: binary frame version %d, want %d", data[2], binaryVersion)
	}
	if data[3] != v.WireTag() {
		return fmt.Errorf("wire: binary frame tag 0x%02x, want 0x%02x", data[3], v.WireTag())
	}
	r := NewReader(data[binHeaderLen:])
	v.DecodeBinary(r)
	return r.Close()
}

// maxPooledBuffer caps the capacity a returned buffer may retain: a
// one-off giant body (a full-topic snapshot of a hot tally) must not
// pin megabytes inside the pool forever.
const maxPooledBuffer = 1 << 20

var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// GetBuffer returns a pooled scratch buffer (length 0, capacity from
// prior use). Return it with PutBuffer when the encoded/decoded bytes
// are no longer referenced.
func GetBuffer() *[]byte {
	return bufPool.Get().(*[]byte)
}

// PutBuffer returns a buffer taken with GetBuffer to the pool.
// Oversized buffers are dropped (see maxPooledBuffer); nil is ignored.
func PutBuffer(b *[]byte) {
	if b == nil || cap(*b) > maxPooledBuffer {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

// ReadAll reads r to EOF into dst (reusing dst's capacity, like
// bytes.Buffer but pool-friendly) and returns the filled slice.
func ReadAll(dst []byte, r io.Reader) ([]byte, error) {
	dst = dst[:0]
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

// Equal reports whether two encodings of the same message are
// byte-identical — the oracle the differential tests use.
func Equal(a, b []byte) bool { return bytes.Equal(a, b) }
