package wire

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"tellme/internal/bitvec"
	"tellme/internal/telemetry"
)

// testMsg is a minimal Message for exercising the codecs without
// depending on the netboard/serve message sets.
type testMsg struct {
	A  int      `json:"a"`
	S  string   `json:"s"`
	Xs []uint32 `json:"xs"`
}

func (*testMsg) WireTag() byte { return 0x7f }

func (m *testMsg) AppendBinary(dst []byte) []byte {
	dst = AppendUint(dst, uint64(m.A))
	dst = AppendString(dst, m.S)
	return AppendUint32s(dst, m.Xs)
}

func (m *testMsg) DecodeBinary(r *Reader) {
	m.A = r.Int()
	m.S = r.String()
	m.Xs = r.Uint32s()
}

// TestJSONCodecFraming pins the compatibility contract: the JSON codec
// must produce exactly what the historical json.Encoder produced —
// json.Marshal output plus a trailing newline.
func TestJSONCodecFraming(t *testing.T) {
	msg := &testMsg{A: 7, S: "hi", Xs: []uint32{1, 2}}
	got, err := JSON.Append(nil, msg)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(msg)
	want = append(want, '\n')
	if !Equal(got, want) {
		t.Fatalf("JSON.Append = %q, want json.Marshal+newline %q", got, want)
	}
	var back testMsg
	if err := JSON.Decode(got, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, msg) {
		t.Fatalf("round trip = %+v, want %+v", back, *msg)
	}
}

// TestBinaryFrame checks the frame header and every way a frame can be
// rejected: short, bad magic, wrong version, wrong tag, trailing bytes.
func TestBinaryFrame(t *testing.T) {
	msg := &testMsg{A: 1, S: "x", Xs: []uint32{}}
	data, err := Binary.Append(nil, msg)
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != 'T' || data[1] != 'B' || data[2] != binaryVersion || data[3] != msg.WireTag() {
		t.Fatalf("frame header = % x", data[:4])
	}
	var back testMsg
	if err := Binary.Decode(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, msg) {
		t.Fatalf("round trip = %+v, want %+v", back, *msg)
	}

	cases := []struct {
		name string
		data []byte
	}{
		{"short", data[:2]},
		{"bad magic", append([]byte("XY"), data[2:]...)},
		{"bad version", append([]byte{'T', 'B', 99}, data[3:]...)},
		{"bad tag", append([]byte{'T', 'B', binaryVersion, 0x01}, data[4:]...)},
		{"trailing bytes", append(append([]byte{}, data...), 0)},
		{"truncated payload", data[:len(data)-1]},
	}
	for _, tc := range cases {
		var v testMsg
		if err := Binary.Decode(tc.data, &v); err == nil {
			t.Errorf("%s: decode accepted", tc.name)
		}
	}
}

func TestByName(t *testing.T) {
	for name, want := range map[string]Codec{"": JSON, "json": JSON, "binary": Binary} {
		c, err := ByName(name)
		if err != nil || c != want {
			t.Errorf("ByName(%q) = %v, %v", name, c, err)
		}
	}
	if _, err := ByName("protobuf"); err == nil {
		t.Error("unknown codec name accepted")
	}
}

func TestClassifyContentType(t *testing.T) {
	cases := []struct {
		ct   string
		want BodyKind
	}{
		{"", KindJSON},
		{"application/json", KindJSON},
		{"application/json; charset=utf-8", KindJSON},
		{"text/plain", KindJSON},
		{"application/x-tellme-bin", KindBinary}, // bare media = v1
		{"application/x-tellme-bin;v=1", KindBinary},
		{"Application/X-Tellme-Bin; V=1", KindBinary},
		{"application/x-tellme-bin; charset=utf-8", KindBinary},
		{"application/x-tellme-bin;v=2", KindUnsupported},
		{"application/x-tellme-bin; v=0", KindUnsupported},
	}
	for _, tc := range cases {
		if got := ClassifyContentType(tc.ct); got != tc.want {
			t.Errorf("ClassifyContentType(%q) = %v, want %v", tc.ct, got, tc.want)
		}
	}
}

func TestAcceptsBinary(t *testing.T) {
	cases := []struct {
		accept string
		want   bool
	}{
		{"", false},
		{"application/json", false},
		{"*/*", false},
		{"application/x-tellme-bin", true},
		{"application/x-tellme-bin;v=1", true},
		{"application/json, application/x-tellme-bin;v=1", true},
		{"application/x-tellme-bin;v=2", false},
	}
	for _, tc := range cases {
		if got := AcceptsBinary(tc.accept); got != tc.want {
			t.Errorf("AcceptsBinary(%q) = %v, want %v", tc.accept, got, tc.want)
		}
	}
}

// TestReaderRoundTrip drives every primitive through an encode/decode
// cycle, including the nil-vs-empty distinction the count+1 prefixes
// exist for.
func TestReaderRoundTrip(t *testing.T) {
	v := bitvec.New(67) // deliberately not word-aligned
	v.Set(0, 1)
	v.Set(66, 1)
	p := bitvec.NewPartial(67)
	p.SetBit(3, 1)
	p.SetBit(64, 0)

	var dst []byte
	dst = AppendUint(dst, 0)
	dst = AppendUint(dst, math.MaxUint64)
	dst = AppendBool(dst, true)
	dst = AppendFloat(dst, -3.75)
	dst = AppendString(dst, "topic/θ")
	dst = AppendInts(dst, nil)
	dst = AppendInts(dst, []int{})
	dst = AppendInts(dst, []int{0, 5, math.MaxUint32})
	dst = AppendUint32s(dst, nil)
	dst = AppendUint32s(dst, []uint32{9})
	dst = AppendVector(dst, v)
	dst = AppendPartial(dst, p)

	r := NewReader(dst)
	if got := r.Uint(); got != 0 {
		t.Fatalf("Uint = %d", got)
	}
	if got := r.Uint(); got != math.MaxUint64 {
		t.Fatalf("Uint = %d", got)
	}
	if !r.Bool() {
		t.Fatal("Bool = false")
	}
	if got := r.Float(); got != -3.75 {
		t.Fatalf("Float = %v", got)
	}
	if got := r.String(); got != "topic/θ" {
		t.Fatalf("String = %q", got)
	}
	if got := r.Ints(); got != nil {
		t.Fatalf("nil Ints = %v", got)
	}
	if got := r.Ints(); got == nil || len(got) != 0 {
		t.Fatalf("empty Ints = %v", got)
	}
	if got := r.Ints(); !reflect.DeepEqual(got, []int{0, 5, math.MaxUint32}) {
		t.Fatalf("Ints = %v", got)
	}
	if got := r.Uint32s(); got != nil {
		t.Fatalf("nil Uint32s = %v", got)
	}
	if got := r.Uint32s(); !reflect.DeepEqual(got, []uint32{9}) {
		t.Fatalf("Uint32s = %v", got)
	}
	if got := r.Vector(); got.String() != v.String() {
		t.Fatalf("Vector = %s, want %s", got.String(), v.String())
	}
	if got := r.Partial(); got.String() != p.String() {
		t.Fatalf("Partial = %s, want %s", got.String(), p.String())
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReaderHostileInputs checks the bounds and stickiness guarantees:
// truncated fields fail, hostile counts cannot reserve memory, and a
// failed reader keeps returning zero values.
func TestReaderHostileInputs(t *testing.T) {
	t.Run("truncated uvarint", func(t *testing.T) {
		r := NewReader([]byte{0x80})
		if r.Uint() != 0 || r.Err() == nil {
			t.Fatal("truncated uvarint accepted")
		}
	})
	t.Run("string over length", func(t *testing.T) {
		r := NewReader(AppendUint(nil, 100))
		if r.String() != "" || r.Err() == nil {
			t.Fatal("oversized string length accepted")
		}
	})
	t.Run("hostile count", func(t *testing.T) {
		r := NewReader(AppendUint(nil, 1<<40))
		if r.Ints() != nil || r.Err() == nil {
			t.Fatal("hostile count accepted")
		}
	})
	t.Run("truncated planes", func(t *testing.T) {
		r := NewReader(AppendUint(nil, 1000))
		if r.Partial().Len() != 0 || r.Err() == nil {
			t.Fatal("truncated partial accepted")
		}
	})
	t.Run("sticky", func(t *testing.T) {
		r := NewReader([]byte{0x80})
		r.Uint()
		first := r.Err()
		if got := r.String(); got != "" {
			t.Fatalf("read after error = %q", got)
		}
		if r.Err() != first {
			t.Fatal("error not sticky")
		}
	})
	t.Run("trailing", func(t *testing.T) {
		r := NewReader([]byte{1, 2})
		r.Byte()
		if err := r.Close(); err == nil || !strings.Contains(err.Error(), "trailing") {
			t.Fatalf("Close = %v, want trailing-bytes error", err)
		}
	})
}

// TestPartialPlaneClamping feeds the Reader a payload whose planes have
// dirty tail bits and a value bit without its known bit; the
// constructed Partial must be clamped back to the invariant.
func TestPartialPlaneClamping(t *testing.T) {
	var dst []byte
	dst = AppendUint(dst, 4)                      // 4-bit partial, one word of planes
	dst = appendWords(dst, []uint64{0xFFFF_FFFF}) // val: bits far past len, and bits known doesn't cover
	dst = appendWords(dst, []uint64{0b0101})      // known: only bits 0 and 2
	r := NewReader(dst)
	p := r.Partial()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if got := p.String(); got != "1?1?" {
		t.Fatalf("clamped partial = %q, want \"1?1?\"", got)
	}
	val, known := p.Planes()
	if val[0] != 0b0101 || known[0] != 0b0101 {
		t.Fatalf("planes = %b/%b, want 0101/0101", val[0], known[0])
	}
}

// TestBitsJSON pins the JSON form of wire.Bits to the historical
// '0'/'1'/'?' string.
func TestBitsJSON(t *testing.T) {
	p := bitvec.NewPartial(5)
	p.SetBit(1, 1)
	p.SetBit(3, 0)
	got, err := json.Marshal(Bits{P: p})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `"?1?0?"` {
		t.Fatalf("marshal = %s", got)
	}
	var back Bits
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatal(err)
	}
	if back.P.String() != p.String() {
		t.Fatalf("round trip = %q", back.P.String())
	}
	if err := json.Unmarshal([]byte(`"01x"`), &back); err == nil {
		t.Fatal("invalid vector string accepted")
	}
}

// TestBitsStringDualMode checks both arms of the string-field encoding:
// a parseable vector string travels packed, an arbitrary string travels
// raw, and both come back verbatim.
func TestBitsStringDualMode(t *testing.T) {
	for _, s := range []string{"", "01?10", strings.Repeat("1", 200), "not bits at all", "01x"} {
		data := AppendBitsString(nil, s)
		r := NewReader(data)
		if got := r.BitsString(); got != s || r.Close() != nil {
			t.Fatalf("BitsString(%q) = %q, err %v", s, got, r.Close())
		}
	}
	// Packed arm is actually packed: a long valid string must shrink.
	long := strings.Repeat("10", 512)
	if data := AppendBitsString(nil, long); len(data) >= len(long)/2 {
		t.Fatalf("valid vector string not packed: %d bytes for %d chars", len(data), len(long))
	}
	r := NewReader([]byte{9})
	if r.BitsString(); r.Err() == nil {
		t.Fatal("bad dual-mode flag accepted")
	}
}

func TestBufferPool(t *testing.T) {
	b := GetBuffer()
	if len(*b) != 0 {
		t.Fatalf("pooled buffer has length %d", len(*b))
	}
	*b = append(*b, make([]byte, 100)...)
	PutBuffer(b)
	PutBuffer(nil) // must not panic
	big := make([]byte, 0, maxPooledBuffer+1)
	PutBuffer(&big) // oversized: dropped, must not panic
}

func TestReadAll(t *testing.T) {
	src := bytes.Repeat([]byte("abc"), 5000)
	got, err := ReadAll(make([]byte, 0, 8), bytes.NewReader(src))
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("ReadAll = %d bytes, err %v", len(got), err)
	}
}

// TestDecodeRequestNegotiation drives the server-side helper through
// the whole negotiation matrix: JSON default, binary body, jsonOnly
// pin (415), unsupported version (415), malformed body (400).
func TestDecodeRequestNegotiation(t *testing.T) {
	msg := &testMsg{A: 3, S: "s", Xs: []uint32{7}}
	jsonBody, _ := JSON.Append(nil, msg)
	binBody, _ := Binary.Append(nil, msg)

	cases := []struct {
		name       string
		ct         string
		body       []byte
		jsonOnly   bool
		wantStatus int
	}{
		{"json default", "", jsonBody, false, 0},
		{"json explicit", MediaJSON, jsonBody, false, 0},
		{"binary", ContentTypeBinary, binBody, false, 0},
		{"binary bare", MediaBinary, binBody, false, 0},
		{"binary vs jsonOnly", ContentTypeBinary, binBody, true, http.StatusUnsupportedMediaType},
		{"future version", MediaBinary + ";v=9", binBody, false, http.StatusUnsupportedMediaType},
		{"garbage json", "", []byte("{"), false, http.StatusBadRequest},
		{"garbage binary", ContentTypeBinary, []byte("nope"), false, http.StatusBadRequest},
	}
	for _, tc := range cases {
		req := httptest.NewRequest("POST", "/x", bytes.NewReader(tc.body))
		if tc.ct != "" {
			req.Header.Set("Content-Type", tc.ct)
		}
		var v testMsg
		status, err := DecodeRequest(req, &v, tc.jsonOnly, Instruments{})
		if status != tc.wantStatus {
			t.Errorf("%s: status %d (err %v), want %d", tc.name, status, err, tc.wantStatus)
			continue
		}
		if status == 0 && !reflect.DeepEqual(&v, msg) {
			t.Errorf("%s: decoded %+v, want %+v", tc.name, v, *msg)
		}
	}
}

// TestWriteReplyNegotiation checks the Accept side: binary only when
// asked for and allowed, correct Content-Type, explicit status codes,
// and the instruments counting body bytes.
func TestWriteReplyNegotiation(t *testing.T) {
	msg := &testMsg{A: 11, S: "reply", Xs: nil}
	reg := telemetry.New()
	ins := NewInstruments(reg, "test", "/x")

	cases := []struct {
		name     string
		accept   string
		jsonOnly bool
		status   int
		wantCT   string
	}{
		{"default json", "", false, 0, MediaJSON},
		{"binary", ContentTypeBinary, false, 0, ContentTypeBinary},
		{"binary vs jsonOnly", ContentTypeBinary, true, 0, MediaJSON},
		{"created", ContentTypeBinary, false, http.StatusCreated, ContentTypeBinary},
	}
	for _, tc := range cases {
		req := httptest.NewRequest("GET", "/x", nil)
		if tc.accept != "" {
			req.Header.Set("Accept", tc.accept)
		}
		rec := httptest.NewRecorder()
		WriteReplyStatus(rec, req, tc.status, msg, tc.jsonOnly, ins)
		wantStatus := tc.status
		if wantStatus == 0 {
			wantStatus = http.StatusOK
		}
		if rec.Code != wantStatus {
			t.Errorf("%s: status %d, want %d", tc.name, rec.Code, wantStatus)
		}
		if ct := rec.Header().Get("Content-Type"); ct != tc.wantCT {
			t.Errorf("%s: Content-Type %q, want %q", tc.name, ct, tc.wantCT)
		}
		codec, _ := ByName("json")
		if tc.wantCT == ContentTypeBinary {
			codec = Binary
		}
		var back testMsg
		if err := codec.Decode(rec.Body.Bytes(), &back); err != nil {
			t.Errorf("%s: reply decode: %v", tc.name, err)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["test.bytes.out./x"]; got == 0 {
		t.Fatal("BytesOut counter did not move")
	}
	if snap.Histograms["test.encode_ns./x"].Count != int64(len(cases)) {
		t.Fatalf("encode histogram count = %d, want %d", snap.Histograms["test.encode_ns./x"].Count, len(cases))
	}
}
