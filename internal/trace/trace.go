// Package trace provides a bounded, concurrency-safe structured event
// log for algorithm runs: which sub-algorithms ran, over how many
// players and objects, and how many probes each span consumed. It
// exists for observability — understanding where a polylog bound's
// constants actually go — and never affects algorithm behavior.
package trace

import (
	"fmt"
	"io"
	"strings"
	"sync"
)

// Field is one key/value annotation on an event.
type Field struct {
	Key   string
	Value string
}

// Event is one recorded occurrence.
type Event struct {
	// Seq is a strictly increasing sequence number (gaps mean drops).
	Seq int64
	// Kind names the event, e.g. "zeroradius.start".
	Kind string
	// Fields carry the annotations in emission order.
	Fields []Field
}

// String renders the event on one line.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d %s", e.Seq, e.Kind)
	for _, f := range e.Fields {
		fmt.Fprintf(&b, " %s=%s", f.Key, f.Value)
	}
	return b.String()
}

// Log is a bounded event log. When full, the oldest events are dropped
// (and counted) so long runs keep their tail, which is usually the
// interesting part. The zero value is not usable; call New.
//
// A nil *Log is a valid disabled log: every method is a no-op (or
// returns an empty result), and Event in particular returns before
// rendering any field, so "tracing off" costs neither allocations nor
// fmt formatting. Callers can thread an optional *Log through without
// guarding each call site.
type Log struct {
	mu      sync.Mutex
	cap     int
	events  []Event
	start   int // ring start
	size    int
	seq     int64
	dropped int64
}

// New returns a Log that retains up to capacity events (minimum 16).
func New(capacity int) *Log {
	if capacity < 16 {
		capacity = 16
	}
	return &Log{cap: capacity, events: make([]Event, capacity)}
}

// Event records an occurrence. kv pairs alternate key (string) and
// value (any; rendered with %v). A trailing odd key gets value "". On a
// nil log it returns immediately, before any field is rendered — values
// passed to a disabled log are never formatted.
func (l *Log) Event(kind string, kv ...any) {
	if l == nil {
		return
	}
	fields := make([]Field, 0, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		key := fmt.Sprintf("%v", kv[i])
		val := ""
		if i+1 < len(kv) {
			val = fmt.Sprintf("%v", kv[i+1])
		}
		fields = append(fields, Field{Key: key, Value: val})
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	ev := Event{Seq: l.seq, Kind: kind, Fields: fields}
	if l.size < l.cap {
		l.events[(l.start+l.size)%l.cap] = ev
		l.size++
		return
	}
	l.events[l.start] = ev
	l.start = (l.start + 1) % l.cap
	l.dropped++
}

// Events returns the retained events in emission order (nil on a nil
// log).
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, l.size)
	for i := 0; i < l.size; i++ {
		out[i] = l.events[(l.start+i)%l.cap]
	}
	return out
}

// Len returns the number of retained events (0 on a nil log).
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Dropped returns how many events were evicted (0 on a nil log).
func (l *Log) Dropped() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Render writes the retained events, one per line.
func (l *Log) Render(w io.Writer) error {
	for _, e := range l.Events() {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	if d := l.Dropped(); d > 0 {
		if _, err := fmt.Fprintf(w, "(%d earlier events dropped)\n", d); err != nil {
			return err
		}
	}
	return nil
}

// CountKinds tallies events by kind.
func (l *Log) CountKinds() map[string]int {
	out := map[string]int{}
	for _, e := range l.Events() {
		out[e.Kind]++
	}
	return out
}
