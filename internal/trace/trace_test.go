package trace

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestEventOrderAndFields(t *testing.T) {
	l := New(16)
	l.Event("a", "x", 1, "y", "two")
	l.Event("b")
	evs := l.Events()
	if len(evs) != 2 || l.Len() != 2 {
		t.Fatalf("%d events", len(evs))
	}
	if evs[0].Kind != "a" || evs[1].Kind != "b" {
		t.Fatalf("order: %v", evs)
	}
	if evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("seqs: %d %d", evs[0].Seq, evs[1].Seq)
	}
	if len(evs[0].Fields) != 2 || evs[0].Fields[0] != (Field{"x", "1"}) || evs[0].Fields[1] != (Field{"y", "two"}) {
		t.Fatalf("fields: %+v", evs[0].Fields)
	}
}

func TestOddKVGetsEmptyValue(t *testing.T) {
	l := New(16)
	l.Event("k", "lonely")
	f := l.Events()[0].Fields
	if len(f) != 1 || f[0].Key != "lonely" || f[0].Value != "" {
		t.Fatalf("fields: %+v", f)
	}
}

func TestRingDropsOldest(t *testing.T) {
	l := New(16)
	for i := 0; i < 40; i++ {
		l.Event(fmt.Sprintf("e%d", i))
	}
	evs := l.Events()
	if len(evs) != 16 {
		t.Fatalf("retained %d", len(evs))
	}
	if evs[0].Kind != "e24" || evs[15].Kind != "e39" {
		t.Fatalf("window: %s..%s", evs[0].Kind, evs[15].Kind)
	}
	if l.Dropped() != 24 {
		t.Fatalf("dropped %d", l.Dropped())
	}
	// sequence numbers still reflect the full history
	if evs[0].Seq != 25 {
		t.Fatalf("seq %d", evs[0].Seq)
	}
}

func TestMinimumCapacity(t *testing.T) {
	l := New(1)
	for i := 0; i < 20; i++ {
		l.Event("x")
	}
	if l.Len() != 16 {
		t.Fatalf("capacity floor not applied: %d", l.Len())
	}
}

func TestRender(t *testing.T) {
	l := New(16)
	l.Event("run.start", "players", 8)
	var buf bytes.Buffer
	if err := l.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "#1 run.start players=8") {
		t.Fatalf("render: %q", buf.String())
	}
	for i := 0; i < 20; i++ {
		l.Event("spam")
	}
	buf.Reset()
	if err := l.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "earlier events dropped") {
		t.Fatal("drop notice missing")
	}
}

func TestCountKinds(t *testing.T) {
	l := New(32)
	l.Event("a")
	l.Event("a")
	l.Event("b")
	c := l.CountKinds()
	if c["a"] != 2 || c["b"] != 1 {
		t.Fatalf("counts: %v", c)
	}
}

func TestConcurrentEvents(t *testing.T) {
	l := New(1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Event("c", "g", i)
			}
		}()
	}
	wg.Wait()
	if l.Len() != 800 {
		t.Fatalf("retained %d", l.Len())
	}
	// sequence numbers must be unique
	seen := map[int64]bool{}
	for _, e := range l.Events() {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func BenchmarkEvent(b *testing.B) {
	l := New(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Event("bench", "i", i, "k", "v")
	}
}

// countingStringer counts how many times it was rendered, to prove a
// disabled (nil) log never formats its event values.
type countingStringer struct{ renders int }

func (c *countingStringer) String() string {
	c.renders++
	return "rendered"
}

func TestNilLogIsFreeNoOp(t *testing.T) {
	var l *Log
	val := &countingStringer{}
	l.Event("kind", "k", val)
	if val.renders != 0 {
		t.Fatalf("nil log rendered its field value %d times; formatting must stay behind the enabled check", val.renders)
	}
	if evs := l.Events(); evs != nil {
		t.Fatalf("nil log Events() = %v", evs)
	}
	if l.Len() != 0 || l.Dropped() != 0 {
		t.Fatalf("nil log Len/Dropped = %d/%d", l.Len(), l.Dropped())
	}
	var buf bytes.Buffer
	if err := l.Render(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil log Render wrote %q, err %v", buf.String(), err)
	}
	if kinds := l.CountKinds(); len(kinds) != 0 {
		t.Fatalf("nil log CountKinds = %v", kinds)
	}
	// And the same value IS rendered once the log is real.
	real := New(16)
	real.Event("kind", "k", val)
	if val.renders != 1 {
		t.Fatalf("enabled log rendered the value %d times, want 1", val.renders)
	}
}
