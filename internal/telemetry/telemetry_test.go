package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryAndInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", SizeBuckets())
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil instruments, got %v %v %v", c, g, h)
	}
	c.Add(5)
	c.Inc()
	g.Set(3)
	g.Add(-1)
	h.Observe(10)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
}

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := New()
	c := r.Counter("probe.charged")
	if c2 := r.Counter("probe.charged"); c2 != c {
		t.Fatal("Counter must get-or-create by name")
	}
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Fatalf("counter = %d, want 4", c.Value())
	}
	g := r.Gauge("topics")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
	h := r.Histogram("lat", []int64{10, 100})
	for _, v := range []int64{1, 10, 11, 1000} {
		h.Observe(v)
	}
	s := r.Snapshot()
	hs := s.Histograms["lat"]
	if hs.Count != 4 || hs.Sum != 1022 || hs.Max != 1000 {
		t.Fatalf("histogram snapshot = %+v", hs)
	}
	wantBuckets := []int64{2, 1, 1} // ≤10, ≤100, +Inf
	for i, want := range wantBuckets {
		if hs.Buckets[i].Count != want {
			t.Fatalf("bucket %d = %d, want %d (%+v)", i, hs.Buckets[i].Count, want, hs.Buckets)
		}
	}
	if !hs.Buckets[2].Inf {
		t.Fatal("last bucket must be +Inf")
	}
	if got := hs.Mean(); got != 1022.0/4 {
		t.Fatalf("mean = %v", got)
	}
}

// TestTelemetryConcurrentUpdates hammers one registry from many
// goroutines; run under -race it proves the instruments are safe for
// the simulator's n-player phases.
func TestTelemetryConcurrentUpdates(t *testing.T) {
	r := New()
	const workers, perWorker = 16, 2000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			c := r.Counter("shared")
			g := r.Gauge("g")
			h := r.Histogram("h", SizeBuckets())
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(i % 50))
				if i%100 == 0 {
					_ = r.Snapshot() // concurrent readers
				}
			}
		}(w)
	}
	wg.Wait()
	total := int64(workers * perWorker)
	if got := r.Counter("shared").Value(); got != total {
		t.Fatalf("counter = %d, want %d", got, total)
	}
	if got := r.Gauge("g").Value(); got != total {
		t.Fatalf("gauge = %d, want %d", got, total)
	}
	if got := r.Histogram("h", nil).Count(); got != total {
		t.Fatalf("histogram count = %d, want %d", got, total)
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	r := New()
	r.Counter("a.b").Add(2)
	r.Gauge("c").Set(-4)
	r.Histogram("h", []int64{5}).Observe(3)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if s.Counters["a.b"] != 2 || s.Gauges["c"] != -4 || s.Histograms["h"].Count != 1 {
		t.Fatalf("round-trip mismatch: %+v", s)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := New()
	r.Counter("netboard.server.requests./v1/probe").Add(3)
	r.Gauge("billboard.topics").Set(2)
	h := r.Histogram("lat.ns", []int64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE tellme_netboard_server_requests__v1_probe counter",
		"tellme_netboard_server_requests__v1_probe 3",
		"# TYPE tellme_billboard_topics gauge",
		"tellme_billboard_topics 2",
		"# TYPE tellme_lat_ns histogram",
		`tellme_lat_ns_bucket{le="10"} 1`,
		`tellme_lat_ns_bucket{le="100"} 2`,
		`tellme_lat_ns_bucket{le="+Inf"} 3`,
		"tellme_lat_ns_sum 555",
		"tellme_lat_ns_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestCannedBuckets(t *testing.T) {
	lat := LatencyBuckets()
	size := SizeBuckets()
	if len(lat) == 0 || len(size) == 0 {
		t.Fatal("empty canned buckets")
	}
	for i := 1; i < len(lat); i++ {
		if lat[i] <= lat[i-1] {
			t.Fatalf("latency bounds not ascending: %v", lat)
		}
	}
	if size[0] != 1 {
		t.Fatalf("size buckets should start at 1: %v", size)
	}
}

func TestCounterFuncSampledAtSnapshot(t *testing.T) {
	r := New()
	var src int64 = 7
	r.CounterFunc("sampled.total", func() int64 { return src })
	if got := r.Snapshot().Counters["sampled.total"]; got != 7 {
		t.Fatalf("sampled.total = %d, want 7", got)
	}
	// The function is re-sampled on every snapshot, not cached.
	src = 42
	if got := r.Snapshot().Counters["sampled.total"]; got != 42 {
		t.Fatalf("sampled.total after update = %d, want 42", got)
	}
	// A sampled name shadows a regular counter of the same name.
	r.Counter("sampled.total").Add(1000)
	if got := r.Snapshot().Counters["sampled.total"]; got != 42 {
		t.Fatalf("sampled.total shadowing = %d, want 42", got)
	}
	// Nil registry: registration is a no-op, no panic.
	var nilReg *Registry
	nilReg.CounterFunc("x", func() int64 { return 1 })
}

// BenchmarkNilCounterAdd measures the disabled fast path: a nil
// counter's Add must be a predicted branch, no atomics.
func BenchmarkNilCounterAdd(b *testing.B) {
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkEnabledCounterAdd is the enabled cost: one atomic add.
func BenchmarkEnabledCounterAdd(b *testing.B) {
	c := New().Counter("x")
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkNilHistogramObserve measures the disabled histogram path.
func BenchmarkNilHistogramObserve(b *testing.B) {
	var h *Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func TestHistogramSnapshotQuantile(t *testing.T) {
	r := New()
	h := r.Histogram("q.ns", []int64{100, 200, 400, 800})

	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", got)
	}

	// 100 observations uniform in (0, 100]: every quantile lands in the
	// first bucket and interpolates from 0.
	for i := 1; i <= 100; i++ {
		h.Observe(int64(i))
	}
	s := h.Snapshot()
	if got := s.Quantile(0); got < 0 || got > 10 {
		t.Fatalf("q0 = %d, want near the low edge of (0,100]", got)
	}
	p50 := s.Quantile(0.5)
	if p50 < 40 || p50 > 60 {
		t.Fatalf("p50 = %d, want ~50", p50)
	}
	// q=1 ranks the last observation; the cap against the exact Max
	// keeps the interpolation from overshooting it.
	if got := s.Quantile(1); got != 100 {
		t.Fatalf("q1 = %d, want 100 (exact max)", got)
	}

	// Push 100 more into (200, 400]: p50 stays in bucket 1, p99 moves.
	for i := 0; i < 100; i++ {
		h.Observe(300)
	}
	s = h.Snapshot()
	if got := s.Quantile(0.25); got > 100 {
		t.Fatalf("p25 = %d, want <= 100", got)
	}
	p75 := s.Quantile(0.75)
	if p75 <= 200 || p75 > 400 {
		t.Fatalf("p75 = %d, want in (200, 400]", p75)
	}

	// Quantiles are monotone in q.
	prev := int64(-1)
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone: q=%v gave %d after %d", q, v, prev)
		}
		prev = v
	}

	// q outside [0,1] clamps instead of panicking.
	if got := s.Quantile(-3); got != s.Quantile(0) {
		t.Fatalf("q<0 = %d, want clamp to q0 = %d", got, s.Quantile(0))
	}
	if got := s.Quantile(7); got != s.Quantile(1) {
		t.Fatalf("q>1 = %d, want clamp to q1 = %d", got, s.Quantile(1))
	}
}

func TestHistogramQuantileInfBucketReturnsMax(t *testing.T) {
	r := New()
	h := r.Histogram("inf.ns", []int64{10})
	h.Observe(5)
	h.Observe(123456) // beyond the last bound: lands in +Inf
	s := h.Snapshot()
	if got := s.Quantile(1); got != 123456 {
		t.Fatalf("q1 in +Inf bucket = %d, want exact max 123456", got)
	}
	if got := s.Quantile(0); got > 10 {
		t.Fatalf("q0 = %d, want <= 10", got)
	}
}

func TestHistogramSnapshotNilSafe(t *testing.T) {
	var h *Histogram
	s := h.Snapshot()
	if s.Count != 0 || len(s.Buckets) != 0 || s.Quantile(0.99) != 0 {
		t.Fatalf("nil histogram snapshot = %+v, want zero", s)
	}
}

func TestLatencyBucketsFine(t *testing.T) {
	fine := LatencyBucketsFine()
	if len(fine) != 24 {
		t.Fatalf("fine buckets = %d, want 24", len(fine))
	}
	for i := 1; i < len(fine); i++ {
		if fine[i] != 2*fine[i-1] {
			t.Fatalf("fine bounds not x2: %v", fine)
		}
	}
	if fine[0] != 10_000 {
		t.Fatalf("fine bounds should start at 10us: %v", fine)
	}
}
