// Package telemetry provides runtime counters, gauges and fixed-bucket
// histograms for the probe stack, with a nil-safe no-op fast path.
//
// The design constraint is the probe hot path: a disabled registry must
// cost essentially nothing. Both the registry and every instrument are
// nil-receiver-safe, so instrumented code holds plain instrument
// pointers and calls them unconditionally:
//
//	c := reg.Counter("probe.charged") // nil reg → nil c
//	...
//	c.Add(1) // nil c → a predicted branch, no atomics, no allocation
//
// Instruments are identified by dotted names ("billboard.tally.cache_hits").
// Registry.Counter/Gauge/Histogram get-or-create by name, so independent
// components can share one registry without coordination; resolve
// instruments once at construction and keep the pointers — the lookup
// takes the registry mutex and is not meant for hot loops.
//
// A Snapshot is a consistent-enough copy for monitoring (each value is
// read atomically; the set is not a cross-instrument transaction).
// WriteJSON and WritePrometheus render a snapshot for the
// /debug/telemetry endpoints (see netboard.Server and cmd/billboard).
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The nil
// *Counter is a valid no-op instrument.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (e.g. live topic count). The
// nil *Gauge is a valid no-op instrument.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (negative to decrease). No-op on a nil
// receiver.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution: counts of observations at
// most each upper bound, plus count/sum/max. Buckets are fixed at
// creation; Observe is lock-free (one atomic add per observation plus a
// max CAS). The nil *Histogram is a valid no-op instrument.
type Histogram struct {
	bounds []int64 // ascending upper bounds; implicit +Inf bucket after
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	b := append([]int64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one observation. No-op on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ObserveSince records the elapsed nanoseconds since start — the usual
// way to feed a latency histogram. No-op on a nil receiver.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Nanoseconds())
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on a nil receiver).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Snapshot copies the histogram's current state (see
// HistogramSnapshot). Each value is read atomically; the set is not a
// transaction, matching Registry.Snapshot. Returns the zero snapshot on
// a nil receiver.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	hs := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
		Max:     h.max.Load(),
		Buckets: make([]BucketCount, len(h.counts)),
	}
	for i := range h.counts {
		b := BucketCount{Count: h.counts[i].Load()}
		if i < len(h.bounds) {
			b.UpperBound = h.bounds[i]
		} else {
			b.Inf = true
		}
		hs.Buckets[i] = b
	}
	return hs
}

// LatencyBuckets returns the canned request-latency bounds in
// nanoseconds: 50µs to ~26s, ×4 per bucket.
func LatencyBuckets() []int64 {
	b := make([]int64, 0, 10)
	for v := int64(50_000); len(b) < 10; v *= 4 {
		b = append(b, v)
	}
	return b
}

// LatencyBucketsFine returns finer request-latency bounds in
// nanoseconds: 10µs to ~84s, ×2 per bucket (24 buckets). The ×4 spacing
// of LatencyBuckets keeps hot-path histograms cheap but caps quantile
// resolution at a factor of 4; load harnesses that report p50/p99 (see
// HistogramSnapshot.Quantile and cmd/loadgen) use this set, bounding
// the interpolation error of any quantile to a factor of 2.
func LatencyBucketsFine() []int64 {
	b := make([]int64, 0, 24)
	for v := int64(10_000); len(b) < 24; v *= 2 {
		b = append(b, v)
	}
	return b
}

// MicroLatencyBuckets returns canned bounds for sub-request work —
// encode/decode CPU time: 1µs to ~16ms, ×4 per bucket (8 buckets).
// LatencyBuckets starts at 50µs, too coarse for codec passes that
// finish in single-digit microseconds.
func MicroLatencyBuckets() []int64 {
	b := make([]int64, 0, 8)
	for v := int64(1_000); len(b) < 8; v *= 4 {
		b = append(b, v)
	}
	return b
}

// SizeBuckets returns canned size/count bounds: powers of four from 1
// to 4^10 (~1M).
func SizeBuckets() []int64 {
	b := make([]int64, 0, 11)
	for v := int64(1); len(b) < 11; v *= 4 {
		b = append(b, v)
	}
	return b
}

// Registry holds named instruments. The nil *Registry is the disabled
// registry: every lookup returns a nil instrument and every nil
// instrument method is a no-op, so instrumentation can be threaded
// unconditionally.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() int64
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() int64),
	}
}

// CounterFunc registers a sampled counter: snapshots (and the JSON and
// Prometheus exports) report fn() under name. Use it for hot-path
// totals a component already maintains in contention-free form (the
// probe engine's per-player counters, the board's post counts): the
// per-event cost stays zero and the shared value is computed only at
// snapshot time. fn must be monotone non-decreasing and safe to call
// concurrently; a sampled name shadows a regular counter of the same
// name. fn is invoked with the registry lock held and must not call
// back into the registry. No-op on a nil registry.
func (r *Registry) CounterFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Counter returns the named counter, creating it on first use. Returns
// nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// upper bounds on first use (later calls keep the original bounds).
// Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// BucketCount is one histogram bucket in a snapshot: observations at
// most UpperBound. The final bucket has UpperBound 0 with Inf true.
type BucketCount struct {
	UpperBound int64 `json:"le"`
	Inf        bool  `json:"inf,omitempty"`
	Count      int64 `json:"count"`
}

// HistogramSnapshot is one histogram's state in a snapshot.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Max     int64         `json:"max"`
	Buckets []BucketCount `json:"buckets"`
}

// Mean returns Sum/Count (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) of the observed
// distribution from the fixed buckets: the bucket holding the rank is
// located by cumulative count and the value is interpolated linearly
// inside it. The estimate is therefore only as sharp as the bucket
// spacing — with ×2 bounds (LatencyBucketsFine) any quantile is correct
// within a factor of 2; see DESIGN.md §14 for what that can and cannot
// resolve. Ranks falling in the +Inf bucket return Max, which the
// histogram tracks exactly. Returns 0 when the histogram is empty; q is
// clamped to [0,1].
func (h HistogramSnapshot) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the q-quantile in the sorted observations, 1-based:
	// q=0 is the first observation, q=1 the last.
	rank := int64(q*float64(h.Count-1)) + 1
	cum := int64(0)
	lo := int64(0)
	for _, b := range h.Buckets {
		if b.Count == 0 {
			if !b.Inf {
				lo = b.UpperBound
			}
			continue
		}
		if cum+b.Count >= rank {
			if b.Inf {
				return h.Max
			}
			// Interpolate the rank's position within [lo, upper]. The
			// bucket's observations are assumed uniform across its span,
			// the standard fixed-bucket estimate.
			frac := float64(rank-cum) / float64(b.Count)
			v := lo + int64(frac*float64(b.UpperBound-lo))
			// Max is exact; no estimate should exceed it.
			if h.Max > 0 && v > h.Max {
				v = h.Max
			}
			return v
		}
		cum += b.Count
		lo = b.UpperBound
	}
	return h.Max
}

// Snapshot is a point-in-time copy of every instrument.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the current value of every instrument. Returns an
// empty snapshot on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, fn := range r.funcs {
		s.Counters[name] = fn()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// WriteJSON renders a snapshot as indented JSON (the /debug/telemetry
// wire format).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format. Instrument names are prefixed with "tellme_" and sanitized
// (every non-alphanumeric rune becomes '_'); histograms emit cumulative
// _bucket{le=...} series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	var b strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		pn := promName(name)
		h := s.Histograms[name]
		fmt.Fprintf(&b, "# TYPE %s histogram\n", pn)
		cum := int64(0)
		for _, bk := range h.Buckets {
			cum += bk.Count
			le := "+Inf"
			if !bk.Inf {
				le = fmt.Sprint(bk.UpperBound)
			}
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", pn, le, cum)
		}
		fmt.Fprintf(&b, "%s_sum %d\n%s_count %d\n", pn, h.Sum, pn, h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// promName sanitizes a dotted instrument name into a Prometheus metric
// name.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("tellme_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
