package baseline

import (
	"math"

	"tellme/internal/bitvec"
	"tellme/internal/probe"
	"tellme/internal/rng"
	"tellme/internal/sim"
)

// Spectral implements the SVD reconstruction baseline in the style of
// Drineas, Kerenidis and Raghavan [6]: sample entries uniformly, scale
// to an unbiased estimator of the full ±1 matrix, compute a rank-`rank`
// approximation by orthogonal (subspace) power iteration, and threshold
// back to grades. Probed entries are kept verbatim.
//
// It performs well when the preference matrix is close to rank-k with a
// singular gap (the assumption the paper removes) and degrades on
// adversarial instances — experiment E9 measures both sides.
func Spectral(e *probe.Engine, runner *sim.Runner, budget, rank, iters int, src rng.Source) []bitvec.Partial {
	in := e.Instance()
	n, m := in.N, in.M
	sampleProbes(e, runner, budget, src)

	// Build the scaled sample matrix: probed entries map 0/1 → ±1 and
	// are divided by the sampling rate; missing entries are 0.
	sampled := 0
	for p := 0; p < n; p++ {
		e.Board().ForEachProbe(p, func(int, byte) { sampled++ })
	}
	rate := float64(sampled) / float64(n*m)
	if rate <= 0 {
		rate = 1
	}
	a := make([][]float64, n)
	for p := 0; p < n; p++ {
		a[p] = make([]float64, m)
		e.Board().ForEachProbe(p, func(o int, v byte) {
			x := -1.0
			if v == 1 {
				x = 1.0
			}
			a[p][o] = x / rate
		})
	}

	if rank < 1 {
		rank = 1
	}
	if iters < 1 {
		iters = 1
	}
	approx := lowRankApprox(a, rank, iters, src.Stream("power", 0))

	out := make([]bitvec.Partial, n)
	sim.MustPhaseAll(runner, n, func(p int) {
		w := bitvec.NewPartial(m)
		for o := 0; o < m; o++ {
			if approx[p][o] > 0 {
				w.SetBit(o, 1)
			} else {
				w.SetBit(o, 0)
			}
		}
		// Probed entries are kept verbatim, overriding the reconstruction.
		e.Board().ForEachProbe(p, func(o int, v byte) {
			w.SetBit(o, v)
		})
		out[p] = w
	})
	return out
}

// lowRankApprox returns the rank-k approximation U·(Uᵀ·A) of A, where U
// spans the top-k left singular subspace computed by subspace power
// iteration with Gram–Schmidt re-orthonormalization.
func lowRankApprox(a [][]float64, k, iters int, r *rng.Rand) [][]float64 {
	n := len(a)
	if n == 0 {
		return nil
	}
	m := len(a[0])
	if k > n {
		k = n
	}
	// U: n×k, random init.
	u := make([][]float64, n)
	for i := range u {
		u[i] = make([]float64, k)
		for j := range u[i] {
			u[i][j] = r.Float64()*2 - 1
		}
	}
	orthonormalize(u)

	tmpM := make([][]float64, k) // k×m: Uᵀ·A
	for j := range tmpM {
		tmpM[j] = make([]float64, m)
	}
	for it := 0; it < iters; it++ {
		// tmpM = Uᵀ·A
		for j := 0; j < k; j++ {
			row := tmpM[j]
			for o := range row {
				row[o] = 0
			}
			for i := 0; i < n; i++ {
				c := u[i][j]
				if c == 0 {
					continue
				}
				ai := a[i]
				for o := 0; o < m; o++ {
					row[o] += c * ai[o]
				}
			}
		}
		// U = A·tmpMᵀ  (i.e. A·Aᵀ·U)
		for i := 0; i < n; i++ {
			ai := a[i]
			for j := 0; j < k; j++ {
				s := 0.0
				row := tmpM[j]
				for o := 0; o < m; o++ {
					s += ai[o] * row[o]
				}
				u[i][j] = s
			}
		}
		orthonormalize(u)
	}
	// Final projection: approx = U·(Uᵀ·A)
	for j := 0; j < k; j++ {
		row := tmpM[j]
		for o := range row {
			row[o] = 0
		}
		for i := 0; i < n; i++ {
			c := u[i][j]
			if c == 0 {
				continue
			}
			ai := a[i]
			for o := 0; o < m; o++ {
				row[o] += c * ai[o]
			}
		}
	}
	approx := make([][]float64, n)
	for i := 0; i < n; i++ {
		approx[i] = make([]float64, m)
		for j := 0; j < k; j++ {
			c := u[i][j]
			if c == 0 {
				continue
			}
			row := tmpM[j]
			for o := 0; o < m; o++ {
				approx[i][o] += c * row[o]
			}
		}
	}
	return approx
}

// orthonormalize applies modified Gram–Schmidt to the columns of u.
func orthonormalize(u [][]float64) {
	if len(u) == 0 {
		return
	}
	n, k := len(u), len(u[0])
	for j := 0; j < k; j++ {
		for prev := 0; prev < j; prev++ {
			dot := 0.0
			for i := 0; i < n; i++ {
				dot += u[i][j] * u[i][prev]
			}
			for i := 0; i < n; i++ {
				u[i][j] -= dot * u[i][prev]
			}
		}
		norm := 0.0
		for i := 0; i < n; i++ {
			norm += u[i][j] * u[i][j]
		}
		norm = math.Sqrt(norm)
		if norm < 1e-12 {
			// Degenerate column: reset to a unit basis vector.
			for i := 0; i < n; i++ {
				u[i][j] = 0
			}
			u[j%n][j] = 1
			continue
		}
		for i := 0; i < n; i++ {
			u[i][j] /= norm
		}
	}
}
