// Package baseline implements the comparison algorithms the paper's
// related-work section measures the main result against:
//
//   - Solo: every player probes every object — the "go it alone" upper
//     bound on cost and lower bound on error.
//   - SampleMajority: probe a random budget of objects and fill the rest
//     with the global per-object majority — collaboration that ignores
//     taste diversity entirely.
//   - KNN: probe a random budget, then adopt the majority grade of the k
//     most similar players (classic memory-based collaborative
//     filtering adapted to the probe model).
//   - Spectral: the SVD approach of Drineas et al. [6] — reconstruct the
//     sampled matrix from its top singular vectors and threshold. Works
//     when the matrix is near low-rank; degrades on adversarial inputs,
//     which is exactly the gap the paper's algorithms close.
//
// All baselines use the same probe engine as the core algorithms, so
// probe budgets and round counts are directly comparable.
package baseline

import (
	"sort"

	"tellme/internal/bitvec"
	"tellme/internal/probe"
	"tellme/internal/rng"
	"tellme/internal/sim"
)

// Solo has every player probe every object; outputs are exact.
func Solo(e *probe.Engine, runner *sim.Runner) []bitvec.Partial {
	in := e.Instance()
	out := make([]bitvec.Partial, in.N)
	sim.MustPhaseAll(runner, in.N, func(p int) {
		pl := e.Player(p)
		w := bitvec.NewPartial(in.M)
		for o := 0; o < in.M; o++ {
			w.SetBit(o, pl.Probe(o))
		}
		out[p] = w
	})
	return out
}

// probeTallier is the optional fast path for the per-object grade tally
// the baselines share: the in-memory Board computes it word-parallel
// over its packed probe planes. Boards reached through a wrapper (e.g.
// boardclient.BindContext) or a network client don't expose it and fall
// back to the per-probe walk.
type probeTallier interface {
	ProbeTally(ones, total []int) ([]int, []int)
}

// probeTally returns ones[o] / total[o] tallies of all posted grades.
func probeTally(e *probe.Engine, n, m int) (ones, total []int) {
	if pt, ok := e.Board().(probeTallier); ok {
		return pt.ProbeTally(nil, nil)
	}
	ones = make([]int, m)
	total = make([]int, m)
	for p := 0; p < n; p++ {
		e.Board().ForEachProbe(p, func(o int, v byte) {
			total[o]++
			if v == 1 {
				ones[o]++
			}
		})
	}
	return ones, total
}

// sampleProbes has every player probe `budget` uniformly random distinct
// objects (all of them if budget ≥ m), posting to the billboard.
func sampleProbes(e *probe.Engine, runner *sim.Runner, budget int, src rng.Source) {
	in := e.Instance()
	sim.MustPhaseAll(runner, in.N, func(p int) {
		pl := e.Player(p)
		r := src.Stream("sample", p)
		if budget >= in.M {
			for o := 0; o < in.M; o++ {
				pl.Probe(o)
			}
			return
		}
		perm := r.Perm(in.M)
		for _, o := range perm[:budget] {
			pl.Probe(o)
		}
	})
}

// SampleMajority probes a random budget per player and predicts every
// unprobed object by the global majority of posted grades (ties and
// never-probed objects default to 0).
func SampleMajority(e *probe.Engine, runner *sim.Runner, budget int, src rng.Source) []bitvec.Partial {
	in := e.Instance()
	sampleProbes(e, runner, budget, src)
	ones, total := probeTally(e, in.N, in.M)
	majority := bitvec.New(in.M)
	for o := 0; o < in.M; o++ {
		if 2*ones[o] > total[o] {
			majority.Set(o, 1)
		}
	}
	out := make([]bitvec.Partial, in.N)
	sim.MustPhaseAll(runner, in.N, func(p int) {
		w := bitvec.NewPartial(in.M)
		for o := 0; o < in.M; o++ {
			w.SetBit(o, majority.Get(o))
		}
		e.Board().ForEachProbe(p, func(o int, v byte) {
			w.SetBit(o, v)
		})
		out[p] = w
	})
	return out
}

// KNN probes a random budget per player, ranks other players by
// disagreement rate on co-probed objects, and predicts each unprobed
// object by the majority grade among the k nearest neighbors that
// probed it (falling back to the global majority, then 0).
func KNN(e *probe.Engine, runner *sim.Runner, budget, k int, src rng.Source) []bitvec.Partial {
	in := e.Instance()
	sampleProbes(e, runner, budget, src)
	board := e.Board()

	// Snapshot everyone's probes once.
	probes := make([]map[int]byte, in.N)
	for p := 0; p < in.N; p++ {
		probes[p] = board.ProbedObjects(p)
	}
	ones, total := probeTally(e, in.N, in.M)

	out := make([]bitvec.Partial, in.N)
	sim.MustPhaseAll(runner, in.N, func(p int) {
		type scored struct {
			q    int
			rate float64
		}
		cand := make([]scored, 0, in.N-1)
		for q := 0; q < in.N; q++ {
			if q == p {
				continue
			}
			overlap, diff := 0, 0
			small, big := probes[p], probes[q]
			if len(big) < len(small) {
				small, big = big, small
			}
			for o, v := range small {
				if w, ok := big[o]; ok {
					overlap++
					if v != w {
						diff++
					}
				}
			}
			if overlap == 0 {
				continue
			}
			cand = append(cand, scored{q, float64(diff) / float64(overlap)})
		}
		sort.Slice(cand, func(i, j int) bool {
			if cand[i].rate != cand[j].rate {
				return cand[i].rate < cand[j].rate
			}
			return cand[i].q < cand[j].q
		})
		if len(cand) > k {
			cand = cand[:k]
		}
		w := bitvec.NewPartial(in.M)
		for o := 0; o < in.M; o++ {
			if v, ok := probes[p][o]; ok {
				w.SetBit(o, v)
				continue
			}
			vote1, votes := 0, 0
			for _, c := range cand {
				if v, ok := probes[c.q][o]; ok {
					votes++
					if v == 1 {
						vote1++
					}
				}
			}
			switch {
			case votes > 0 && 2*vote1 > votes:
				w.SetBit(o, 1)
			case votes > 0:
				w.SetBit(o, 0)
			case 2*ones[o] > total[o]:
				w.SetBit(o, 1)
			default:
				w.SetBit(o, 0)
			}
		}
		out[p] = w
	})
	return out
}
