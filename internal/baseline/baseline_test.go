package baseline

import (
	"testing"

	"tellme/internal/billboard"
	"tellme/internal/ints"
	"tellme/internal/metrics"
	"tellme/internal/prefs"
	"tellme/internal/probe"
	"tellme/internal/rng"
	"tellme/internal/sim"
)

func setup(t testing.TB, in *prefs.Instance, seed uint64) (*probe.Engine, *sim.Runner, rng.Source) {
	t.Helper()
	b := billboard.New(in.N, in.M)
	e := probe.NewEngine(in, b, rng.NewSource(seed))
	return e, sim.NewRunner(0), rng.NewSource(seed + 1)
}

func TestSoloExact(t *testing.T) {
	in := prefs.Planted(32, 64, 0.5, 4, 1)
	e, r, _ := setup(t, in, 2)
	out := Solo(e, r)
	for p := 0; p < in.N; p++ {
		if d := in.Err(p, out[p]); d != 0 {
			t.Fatalf("solo error %d for player %d", d, p)
		}
		if e.Charged(p) != int64(in.M) {
			t.Fatalf("solo probes %d for player %d", e.Charged(p), p)
		}
	}
}

func TestSampleMajorityKeepsOwnProbes(t *testing.T) {
	in := prefs.UniformRandom(16, 64, 3)
	e, r, src := setup(t, in, 4)
	out := SampleMajority(e, r, 20, src)
	for p := 0; p < in.N; p++ {
		own := e.Board().ProbedObjects(p)
		if len(own) != 20 {
			t.Fatalf("player %d probed %d, want 20", p, len(own))
		}
		for o, v := range own {
			if out[p].Get(o) != v {
				t.Fatalf("player %d overrode own probe at %d", p, o)
			}
		}
		if out[p].UnknownCount() != 0 {
			t.Fatal("sample majority left ? entries")
		}
	}
}

func TestSampleMajorityHomogeneousCommunity(t *testing.T) {
	// With every player identical, the majority is always right.
	in := prefs.Identical(64, 128, 1.0, 5)
	e, r, src := setup(t, in, 6)
	out := SampleMajority(e, r, 16, src)
	for p := 0; p < in.N; p++ {
		if d := in.Err(p, out[p]); d != 0 {
			t.Fatalf("homogeneous majority error %d", d)
		}
	}
}

func TestSampleMajorityBudgetCap(t *testing.T) {
	in := prefs.UniformRandom(8, 16, 7)
	e, r, src := setup(t, in, 8)
	out := SampleMajority(e, r, 1000, src) // budget > m
	for p := 0; p < in.N; p++ {
		if d := in.Err(p, out[p]); d != 0 {
			t.Fatalf("full-budget sample majority wrong: %d", d)
		}
	}
}

func TestKNNRecoversCommunity(t *testing.T) {
	// Half the players share one vector: with enough samples, kNN should
	// reconstruct members almost perfectly.
	in := prefs.Identical(64, 256, 0.5, 9)
	e, r, src := setup(t, in, 10)
	out := KNN(e, r, 64, 8, src)
	c := in.Communities[0]
	bad := 0
	for _, p := range c.Members {
		if in.Err(p, out[p]) > 10 {
			bad++
		}
	}
	if bad > len(c.Members)/8 {
		t.Fatalf("kNN failed for %d/%d members", bad, len(c.Members))
	}
}

func TestKNNNoOverlapFallsBack(t *testing.T) {
	// Budget 1 on a large object set: overlaps are rare; must not panic
	// and must produce total outputs.
	in := prefs.UniformRandom(8, 512, 11)
	e, r, src := setup(t, in, 12)
	out := KNN(e, r, 1, 3, src)
	for p := 0; p < in.N; p++ {
		if out[p].Len() != in.M || out[p].UnknownCount() != 0 {
			t.Fatal("kNN output incomplete")
		}
	}
}

func TestSpectralLowRankInstance(t *testing.T) {
	// Mixture of 2 types with tiny noise: a rank-2 matrix plus noise —
	// the spectral method's home turf. It should beat random guessing by
	// a wide margin on unprobed entries.
	in := prefs.TypesMixture(96, 192, 2, 0.02, 13)
	e, r, src := setup(t, in, 14)
	budget := 48 // 1/4 of the columns
	out := Spectral(e, r, budget, 2, 12, src)
	meanErr := metrics.MeanErr(in, players(in.N), out)
	// Random guessing on the ~144 unprobed entries would err on ~72.
	if meanErr > 40 {
		t.Fatalf("spectral mean error %v on its favorable instance", meanErr)
	}
}

func TestSpectralAdversarialDegrades(t *testing.T) {
	// On an adversarial instance the spectral baseline should NOT be
	// expected to recover the community — this pins the qualitative gap
	// the paper claims. We only require it to stay total and bounded.
	in := prefs.AdversarialVoteSplit(64, 128, 0.25, 6, 15)
	e, r, src := setup(t, in, 16)
	out := Spectral(e, r, 32, 2, 8, src)
	for p := 0; p < in.N; p++ {
		if out[p].Len() != in.M || out[p].UnknownCount() != 0 {
			t.Fatal("spectral output incomplete")
		}
	}
}

func TestSpectralKeepsOwnProbes(t *testing.T) {
	in := prefs.TypesMixture(32, 64, 2, 0.05, 17)
	e, r, src := setup(t, in, 18)
	out := Spectral(e, r, 16, 2, 6, src)
	for p := 0; p < in.N; p++ {
		for o, v := range e.Board().ProbedObjects(p) {
			if out[p].Get(o) != v {
				t.Fatalf("player %d overrode own probe at %d", p, o)
			}
		}
	}
}

func TestOrthonormalize(t *testing.T) {
	r := rng.New(19)
	u := make([][]float64, 10)
	for i := range u {
		u[i] = []float64{r.Float64(), r.Float64(), r.Float64()}
	}
	orthonormalize(u)
	for a := 0; a < 3; a++ {
		for b := 0; b <= a; b++ {
			dot := 0.0
			for i := range u {
				dot += u[i][a] * u[i][b]
			}
			want := 0.0
			if a == b {
				want = 1.0
			}
			if d := dot - want; d > 1e-9 || d < -1e-9 {
				t.Fatalf("col %d·col %d = %v", a, b, dot)
			}
		}
	}
}

func TestOrthonormalizeDegenerate(t *testing.T) {
	u := [][]float64{{1, 1}, {0, 0}} // second column dependent after GS
	orthonormalize(u)
	// must not produce NaN
	for i := range u {
		for j := range u[i] {
			if u[i][j] != u[i][j] {
				t.Fatal("NaN in orthonormalized basis")
			}
		}
	}
}

func players(n int) []int {
	return ints.Iota(n)
}
