// Package boardclient defines the one interface every billboard
// transport satisfies: the in-process billboard.Board, the
// single-server netboard.Client, and the sharded netboard.Cluster. The
// execution spine (tellme.Options.Board, core.Env, the probe engine)
// depends only on this interface, so algorithm code is transport-blind:
// the same run executes against shared memory, one HTTP server, or a
// consistent-hashed shard fleet without special-casing any of them.
//
// The interface is billboard.Interface — the error-free algorithm
// surface — plus the two contracts a *client* of a possibly-remote
// board needs:
//
//   - TopicSnapshot: the epoch-tagged tally read behind the batched
//     wire protocol, also the replay source for shard drains.
//   - Err/Failures: the degraded-mode record. A transport that
//     swallows terminal failures (a non-panicking netboard OnError)
//     returns zero values that are indistinguishable from an empty
//     board; Err is how a caller tells a dead transport from one. The
//     in-memory Board cannot fail and reports nil/0 forever.
package boardclient

import (
	"context"

	"tellme/internal/billboard"
)

// Interface is the full billboard-client surface. billboard.Board,
// netboard.Client and netboard.Cluster all satisfy it (compile-time
// assertions live here and in netboard).
type Interface interface {
	billboard.Interface

	// TopicSnapshot returns the topic's identity stamp (gen, epoch)
	// and, unless the caller's (sinceGen, sinceEpoch) already matches,
	// the immutable vote tallies of both posting kinds; unchanged
	// reports a match (tallies nil, caller keeps what it fetched at
	// that stamp). See billboard.Board.TopicSnapshot for the stamp
	// semantics across DropTopic.
	TopicSnapshot(name string, sinceGen, sinceEpoch uint64) (gen, epoch uint64, unchanged bool, votes []billboard.Vote, valVotes []billboard.ValueVote)

	// Err returns the first terminal transport failure the client
	// swallowed in degraded mode (nil if none, and always nil for an
	// in-memory board). Once Err is non-nil, at least one call has
	// returned a degraded zero value; results obtained since must not
	// be trusted as board state.
	Err() error
	// Failures returns how many calls failed terminally.
	Failures() int64
}

// ContextBinder is the optional context-aware entry point of a board
// client. A client whose operations can block — netboard.Client and
// netboard.Cluster, whose every method is an HTTP request with retries
// — implements it by returning a view of itself whose operations are
// governed by ctx: in-flight requests and backoff sleeps abort when
// ctx is cancelled. The in-memory Board does not implement it; its
// operations never block on anything but short-lived locks, so there
// is nothing to interrupt.
type ContextBinder interface {
	// BindContext returns a view of the board whose operations observe
	// ctx. The view shares all state with the receiver (posting
	// through either is visible through both).
	BindContext(ctx context.Context) Interface
}

// BindContext binds ctx to b when b supports it and ctx is
// cancellable; otherwise it returns b unchanged. This is the single
// seam through which the probe engine (and any other board consumer)
// becomes cancellation-aware without the Interface growing a ctx
// parameter on every call.
func BindContext(ctx context.Context, b Interface) Interface {
	if ctx == nil || ctx.Done() == nil {
		return b
	}
	if cb, ok := b.(ContextBinder); ok {
		return cb.BindContext(ctx)
	}
	return b
}

// The in-memory board satisfies the full client surface (the netboard
// assertions live in that package to avoid an import cycle).
var _ Interface = (*billboard.Board)(nil)
