package sim

import (
	"sync/atomic"
	"testing"

	"tellme/internal/billboard"
	"tellme/internal/ints"
	"tellme/internal/prefs"
	"tellme/internal/probe"
	"tellme/internal/rng"
)

func TestGateEqualWork(t *testing.T) {
	g := NewGate()
	const players, probes = 8, 10
	LockstepPhase(g, idsOf(players), func(p int) {
		for i := 0; i < probes; i++ {
			g.Tick()
		}
	})
	if got := g.Rounds(); got != probes {
		t.Fatalf("rounds = %d, want %d", got, probes)
	}
}

func TestGateUnevenWorkEarlyLeavers(t *testing.T) {
	// Player p performs p+1 ticks; rounds must equal the maximum (the
	// model: a player that has finished no longer holds up the round).
	g := NewGate()
	const players = 6
	LockstepPhase(g, idsOf(players), func(p int) {
		for i := 0; i <= p; i++ {
			g.Tick()
		}
	})
	if got := g.Rounds(); got != players {
		t.Fatalf("rounds = %d, want %d", got, players)
	}
}

func TestGateZeroTickPlayers(t *testing.T) {
	g := NewGate()
	LockstepPhase(g, idsOf(4), func(p int) {
		if p == 0 {
			g.Tick()
			g.Tick()
		}
		// others do nothing
	})
	// Rounds: the non-probing players leave immediately; player 0's two
	// ticks each complete a singleton round (eventually).
	if got := g.Rounds(); got != 2 {
		t.Fatalf("rounds = %d, want 2", got)
	}
}

func TestGateSequentialPhases(t *testing.T) {
	g := NewGate()
	LockstepPhase(g, idsOf(3), func(p int) { g.Tick() })
	first := g.Rounds()
	LockstepPhase(g, idsOf(5), func(p int) { g.Tick(); g.Tick() })
	if got := g.Rounds() - first; got != 2 {
		t.Fatalf("second phase rounds = %d, want 2", got)
	}
}

func TestLockstepNoTicksAllowed(t *testing.T) {
	g := NewGate()
	var n atomic.Int32
	LockstepPhase(g, idsOf(10), func(p int) { n.Add(1) })
	if n.Load() != 10 {
		t.Fatalf("ran %d", n.Load())
	}
	if g.Rounds() != 0 {
		t.Fatalf("rounds = %d", g.Rounds())
	}
}

// TestLockstepValidatesProbeAccounting is the point of the Gate: under
// the strict one-probe-per-round model, the realized round count of a
// probing phase equals the max per-player probe count — the quantity
// the simulator's cheap accounting reports.
func TestLockstepValidatesProbeAccounting(t *testing.T) {
	in := prefs.Planted(16, 64, 0.5, 4, 1)
	b := billboard.New(in.N, in.M)
	g := NewGate()
	e := probe.NewEngine(in, b, rng.NewSource(2), probe.WithProbeHook(func(int) { g.Tick() }))

	// Uneven workload: player p probes 3+p objects.
	LockstepPhase(g, idsOf(in.N), func(p int) {
		pl := e.Player(p)
		for o := 0; o < 3+p; o++ {
			pl.Probe(o % in.M)
		}
	})
	var maxProbes int64
	for p := 0; p < in.N; p++ {
		if c := e.Charged(p); c > maxProbes {
			maxProbes = c
		}
	}
	if g.Rounds() != maxProbes {
		t.Fatalf("lockstep rounds %d != max per-player probes %d", g.Rounds(), maxProbes)
	}
}

func idsOf(n int) []int { return ints.Iota(n) }
