package sim

import (
	"context"
	"sync"
	"sync/atomic"

	"tellme/internal/ints"
)

// Gate is a dynamic-membership round barrier: the strict version of the
// paper's synchronous model, where in each round every active player
// performs exactly one probe. Players register on entry, call Tick
// before each probe, and deregister when their phase work is done; a
// round completes when every currently-registered player has either
// ticked or left. The number of completed rounds is then the model's
// exact round count, which tests use to validate the cheaper
// "max probes per player" accounting the simulator normally reports.
type Gate struct {
	mu      sync.Mutex
	cond    *sync.Cond
	active  int   // registered players
	arrived int   // players that ticked this round
	round   int64 // completed rounds
	gen     int64 // round generation (for wakeup correctness)
}

// NewGate returns an empty gate.
func NewGate() *Gate {
	g := &Gate{}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Enter registers a player. Must be called before its first Tick.
func (g *Gate) Enter() {
	g.mu.Lock()
	g.active++
	g.mu.Unlock()
}

// Leave deregisters a player. If it was the last one holding up the
// current round, the round completes.
func (g *Gate) Leave() {
	g.mu.Lock()
	g.active--
	g.maybeAdvance()
	g.mu.Unlock()
}

// Tick blocks until every other active player has also ticked (or
// left); then the round advances and all blocked players resume.
func (g *Gate) Tick() {
	g.mu.Lock()
	g.arrived++
	gen := g.gen
	g.maybeAdvance()
	for gen == g.gen {
		// waiting for the stragglers of this round
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// maybeAdvance completes the round if everyone arrived. Caller holds mu.
func (g *Gate) maybeAdvance() {
	if g.active > 0 && g.arrived >= g.active {
		g.round++
		g.gen++
		g.arrived = 0
		g.cond.Broadcast()
	}
	if g.active == 0 {
		// nobody left; clear arrivals so the next phase starts clean
		if g.arrived > 0 {
			g.round++
			g.gen++
			g.arrived = 0
		}
		g.cond.Broadcast()
	}
}

// Rounds returns the number of completed rounds so far.
func (g *Gate) Rounds() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.round
}

// LockstepPhase runs f(p) for every player concurrently under the
// strict round model: each player's probes synchronize on the gate (the
// caller arranges that, e.g. via probe.WithGate), and the phase's round
// cost is the gate's round delta. Unlike Runner.Phase this spawns one
// goroutine per player — a player blocked in Tick must not prevent
// others from being scheduled. A panic in f is recovered per player
// (the gate still sees the Leave, so the others' rounds keep advancing)
// and the first one is returned after all players finish.
func LockstepPhase(g *Gate, players []int, f func(p int)) error {
	if len(players) == 0 {
		return nil
	}
	// Register everyone before any goroutine starts: otherwise a fast
	// player could tick against a half-populated gate and complete
	// rounds on its own.
	for range players {
		g.Enter()
	}
	var (
		wg         sync.WaitGroup
		firstPanic atomic.Pointer[panicRec]
	)
	for _, p := range players {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer g.Leave()
			if rec := safeCall(f, p); rec != nil {
				firstPanic.CompareAndSwap(nil, rec)
			}
		}(p)
	}
	wg.Wait()
	return phaseError(nil, firstPanic.Load())
}

// LockstepRunner is a PhaseRunner that executes every phase under the
// strict round model via a shared Gate. Use together with
// probe.WithProbeHook(func(int){ g.Tick() }) so each probe synchronizes
// a round. One goroutine per player; intended for validation and small
// instances, not throughput. Cancellation is observed at phase
// boundaries only: inside a phase every registered player must keep
// ticking or the gate would deadlock, so a cancelled context skips the
// phase entirely rather than abandoning it halfway.
type LockstepRunner struct {
	G *Gate
}

var _ PhaseRunner = (*LockstepRunner)(nil)

// Phase implements PhaseRunner.
func (l *LockstepRunner) Phase(ctx context.Context, players []int, f func(p int)) error {
	if cancelled(ctxDone(ctx)) {
		return context.Cause(ctx)
	}
	if err := LockstepPhase(l.G, players, f); err != nil {
		return err
	}
	return phaseError(ctx, nil)
}

// PhaseAll implements PhaseRunner.
func (l *LockstepRunner) PhaseAll(ctx context.Context, n int, f func(p int)) error {
	return l.Phase(ctx, ints.Iota(n), f)
}
