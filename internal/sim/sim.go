// Package sim runs the distributed algorithms: n players execute
// concurrently in lockstep phases separated by barriers.
//
// The paper's model is round-synchronous — in each round every player
// reads the billboard, probes one object, and posts. We simulate at the
// granularity of phases: within a phase each player performs some number
// of probes; player code within one phase never depends on another
// player's actions in the same phase, only on postings from completed
// phases, so the phase is embarrassingly parallel. The parallel round
// cost of a phase is the maximum number of probes any single player
// charged during it, which the Clock accumulates from probe-engine
// snapshots.
//
// # Cancellation and failure
//
// A phase is fallible: Phase takes a context and returns an error. A
// nil (or never-cancelled) context takes the pre-context fast path —
// no per-item synchronization beyond what the barrier already needs.
// When the context is cancelled mid-phase, workers observe it at chunk
// boundaries: they stop claiming new work, finish the chunk in hand,
// and drain at the barrier, so Phase never returns with player code
// still running. A panic inside player code no longer escapes the
// barrier; it is recovered per call (every other player still runs)
// and returned as a *PanicError after the barrier.
package sim

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"tellme/internal/probe"
	"tellme/internal/telemetry"
)

// PhaseRunner executes one per-player function per phase. Runner is the
// standard worker-pool implementation; LockstepRunner executes under
// the strict one-probe-per-round model for validation.
type PhaseRunner interface {
	// Phase runs f(p) for every p in players and returns when all
	// started calls complete (the barrier). ctx may be nil (never
	// cancelled). On cancellation, players not yet started are skipped
	// and the context's cause is returned; a panic in f is returned as
	// a *PanicError after every other player has run.
	Phase(ctx context.Context, players []int, f func(p int)) error
	// PhaseAll runs f for players 0..n-1 under the same contract.
	PhaseAll(ctx context.Context, n int, f func(p int)) error
}

// PanicError is a panic from player code, captured at the phase barrier
// and returned as an error instead of unwinding through the simulator.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack, captured at recovery.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("sim: panic in player code: %v", e.Value)
}

// Unwrap exposes the panic value when it is itself an error, so
// errors.Is/As see through player code that panicked with a typed
// error (e.g. a netboard transport failure).
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// MustPhase runs a non-cancellable phase, re-panicking any player
// panic — the pre-context behavior, for analyses outside the
// cancellable spine (baselines, onegood).
func MustPhase(r PhaseRunner, players []int, f func(p int)) {
	if err := r.Phase(nil, players, f); err != nil {
		panic(err)
	}
}

// MustPhaseAll is MustPhase over players 0..n-1.
func MustPhaseAll(r PhaseRunner, n int, f func(p int)) {
	if err := r.PhaseAll(nil, n, f); err != nil {
		panic(err)
	}
}

// ctxDone returns the context's done channel, or nil for a nil or
// never-cancelled context — the fast-path discriminator.
func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// cancelled reports whether done is closed, without blocking.
func cancelled(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// panicRec is one recovered panic with its origin stack.
type panicRec struct {
	val   any
	stack []byte
}

// safeCall runs g(i), converting a panic into a panicRec. The stack is
// captured inside the deferred recover, while the panicking frames are
// still live.
func safeCall(g func(i int), i int) (rec *panicRec) {
	defer func() {
		if v := recover(); v != nil {
			rec = &panicRec{val: v, stack: debug.Stack()}
		}
	}()
	g(i)
	return nil
}

// phaseError converts a phase's outcome into its returned error:
// a cancellation panic from the probe engine or a done context yields
// the cancellation cause; any other panic yields a *PanicError.
func phaseError(ctx context.Context, rec *panicRec) error {
	if rec != nil {
		if c, ok := rec.val.(*probe.Canceled); ok {
			return c.Cause
		}
		return &PanicError{Value: rec.val, Stack: rec.stack}
	}
	if cancelled(ctxDone(ctx)) {
		return context.Cause(ctx)
	}
	return nil
}

// Runner executes per-player functions concurrently with a bounded
// worker pool. It is reusable across phases and safe for sequential use
// from one coordinating goroutine.
type Runner struct {
	workers int
}

var _ PhaseRunner = (*Runner)(nil)

// NewRunner returns a Runner with the given parallelism; if workers <= 0
// it defaults to GOMAXPROCS.
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: workers}
}

// Phase runs f(p) for every p in players concurrently and returns when
// all started calls complete (the barrier). See PhaseRunner.
func (r *Runner) Phase(ctx context.Context, players []int, f func(p int)) error {
	n := len(players)
	if n == 0 {
		return phaseError(ctx, nil)
	}
	if r.width(n) == 1 {
		return r.serial(ctx, n, func(i int) { f(players[i]) })
	}
	return r.parallel(ctx, n, func(i int) { f(players[i]) })
}

// PhaseAll runs f for players 0..n-1, without materializing the id list.
func (r *Runner) PhaseAll(ctx context.Context, n int, f func(p int)) error {
	if n == 0 {
		return phaseError(ctx, nil)
	}
	if r.width(n) == 1 {
		return r.serial(ctx, n, f)
	}
	return r.parallel(ctx, n, f)
}

// width is the worker count for a phase of n items.
func (r *Runner) width(n int) int {
	if r.workers < n {
		return r.workers
	}
	return n
}

// serial is the one-worker phase: cancellation is observed between
// calls, and like the parallel path a panic is recorded and every
// remaining player still runs.
func (r *Runner) serial(ctx context.Context, n int, g func(i int)) error {
	done := ctxDone(ctx)
	var first *panicRec
	for i := 0; i < n; i++ {
		if cancelled(done) {
			break
		}
		if rec := safeCall(g, i); rec != nil && first == nil {
			first = rec
		}
	}
	return phaseError(ctx, first)
}

// parallel dispatches g(0..n-1) over width(n) workers. Work is handed
// out in chunks claimed off one atomic counter — no mutex, no per-item
// closure, and the worker body is a single closure shared by all
// goroutines, so a phase allocates O(workers) regardless of n.
// Cancellation is observed before each chunk claim: a cancelled worker
// stops claiming, finishes nothing further, and drains at the barrier.
func (r *Runner) parallel(ctx context.Context, n int, g func(i int)) error {
	w := r.width(n)
	chunk := n / (w * 4)
	if chunk < 1 {
		chunk = 1
	} else if chunk > 64 {
		chunk = 64
	}
	done := ctxDone(ctx)
	var (
		next       atomic.Int64
		firstPanic atomic.Pointer[panicRec]
		wg         sync.WaitGroup
	)
	// Per-call recovery keeps the original barrier semantics: one
	// panicking player does not stop the others; the first recorded
	// panic is returned after the barrier.
	worker := func() {
		defer wg.Done()
		for {
			if cancelled(done) {
				return
			}
			end := int(next.Add(int64(chunk)))
			start := end - chunk
			if start >= n {
				return
			}
			if end > n {
				end = n
			}
			for i := start; i < end; i++ {
				if rec := safeCall(g, i); rec != nil {
					firstPanic.CompareAndSwap(nil, rec)
				}
			}
		}
	}
	wg.Add(w)
	for i := 0; i < w; i++ {
		go worker()
	}
	wg.Wait()
	return phaseError(ctx, firstPanic.Load())
}

// Clock converts phases into the paper's parallel round count. Each
// Run() executes one phase and charges it max-probes-per-player rounds,
// and records the phase's wall-clock time alongside.
type Clock struct {
	Runner *Runner
	Engine *probe.Engine
	// Telemetry, when non-nil, receives per-phase wall time and round
	// counts: a "sim.phase.ns" histogram over all phases plus
	// "sim.phase.<name>.{calls,rounds,ns}" counters per phase name.
	Telemetry *telemetry.Registry

	rounds int64
	phases []PhaseStat
	snap   []int64

	// Cached instruments, resolved on first use per phase name: Run
	// executes thousands of phases, so the registry's mutex-guarded
	// get-or-create (and the name concatenation) must not happen per
	// phase. Unsynchronized like the rest of the Clock state — a Clock
	// is owned by one coordinator goroutine.
	telHist   *telemetry.Histogram
	telPhases map[string]phaseTel
}

// phaseTel is one phase name's resolved counters.
type phaseTel struct {
	calls, rounds, ns *telemetry.Counter
}

// PhaseStat records the cost of one executed phase.
type PhaseStat struct {
	Name    string
	Rounds  int64 // max probes by a single player in the phase
	Players int
	// Elapsed is the phase's wall-clock duration (simulator time, not a
	// model cost — rounds is the paper's cost measure).
	Elapsed time.Duration
}

// NewClock builds a Clock over a runner and engine.
func NewClock(r *Runner, e *probe.Engine) *Clock {
	return &Clock{Runner: r, Engine: e}
}

// Run executes f(p) for every p in players as one phase and accounts its
// round cost. A cancelled or panicking phase is still accounted (the
// probes it charged before aborting are real rounds) and its error is
// returned.
func (c *Clock) Run(ctx context.Context, name string, players []int, f func(p int)) error {
	c.snap = c.Engine.Snapshot(c.snap)
	start := time.Now()
	err := c.Runner.Phase(ctx, players, f)
	elapsed := time.Since(start)
	d := c.Engine.MaxDelta(c.snap)
	c.rounds += d
	c.phases = append(c.phases, PhaseStat{Name: name, Rounds: d, Players: len(players), Elapsed: elapsed})
	if tel := c.Telemetry; tel != nil {
		if c.telHist == nil {
			c.telHist = tel.Histogram("sim.phase.ns", telemetry.LatencyBuckets())
			c.telPhases = make(map[string]phaseTel)
		}
		pt, ok := c.telPhases[name]
		if !ok {
			pt = phaseTel{
				calls:  tel.Counter("sim.phase." + name + ".calls"),
				rounds: tel.Counter("sim.phase." + name + ".rounds"),
				ns:     tel.Counter("sim.phase." + name + ".ns"),
			}
			c.telPhases[name] = pt
		}
		c.telHist.Observe(elapsed.Nanoseconds())
		pt.calls.Inc()
		pt.rounds.Add(d)
		pt.ns.Add(elapsed.Nanoseconds())
	}
	return err
}

// Rounds returns the accumulated parallel round count.
func (c *Clock) Rounds() int64 { return c.rounds }

// Phases returns per-phase statistics in execution order.
func (c *Clock) Phases() []PhaseStat { return c.phases }
