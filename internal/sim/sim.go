// Package sim runs the distributed algorithms: n players execute
// concurrently in lockstep phases separated by barriers.
//
// The paper's model is round-synchronous — in each round every player
// reads the billboard, probes one object, and posts. We simulate at the
// granularity of phases: within a phase each player performs some number
// of probes; player code within one phase never depends on another
// player's actions in the same phase, only on postings from completed
// phases, so the phase is embarrassingly parallel. The parallel round
// cost of a phase is the maximum number of probes any single player
// charged during it, which the Clock accumulates from probe-engine
// snapshots.
package sim

import (
	"runtime"
	"sync"

	"tellme/internal/probe"
)

// PhaseRunner executes one per-player function per phase. Runner is the
// standard worker-pool implementation; LockstepRunner executes under
// the strict one-probe-per-round model for validation.
type PhaseRunner interface {
	// Phase runs f(p) for every p in players and returns when all
	// complete (the barrier).
	Phase(players []int, f func(p int))
	// PhaseAll runs f for players 0..n-1.
	PhaseAll(n int, f func(p int))
}

// Runner executes per-player functions concurrently with a bounded
// worker pool. It is reusable across phases and safe for sequential use
// from one coordinating goroutine.
type Runner struct {
	workers int
}

var _ PhaseRunner = (*Runner)(nil)

// NewRunner returns a Runner with the given parallelism; if workers <= 0
// it defaults to GOMAXPROCS.
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: workers}
}

// Phase runs f(p) for every p in players concurrently and returns when
// all calls complete (the barrier). Panics inside f are propagated to
// the caller after all workers stop.
func (r *Runner) Phase(players []int, f func(p int)) {
	if len(players) == 0 {
		return
	}
	w := r.workers
	if w > len(players) {
		w = len(players)
	}
	if w == 1 {
		for _, p := range players {
			f(p)
		}
		return
	}
	var (
		wg      sync.WaitGroup
		next    int
		nextMu  sync.Mutex
		panicMu sync.Mutex
		panics  []any
	)
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				nextMu.Lock()
				if next >= len(players) {
					nextMu.Unlock()
					return
				}
				p := players[next]
				next++
				nextMu.Unlock()
				func() {
					defer func() {
						if rec := recover(); rec != nil {
							panicMu.Lock()
							panics = append(panics, rec)
							panicMu.Unlock()
						}
					}()
					f(p)
				}()
			}
		}()
	}
	wg.Wait()
	if len(panics) > 0 {
		panic(panics[0])
	}
}

// PhaseAll runs f for players 0..n-1.
func (r *Runner) PhaseAll(n int, f func(p int)) {
	players := make([]int, n)
	for i := range players {
		players[i] = i
	}
	r.Phase(players, f)
}

// Clock converts phases into the paper's parallel round count. Each
// Run() executes one phase and charges it max-probes-per-player rounds.
type Clock struct {
	Runner *Runner
	Engine *probe.Engine

	rounds int64
	phases []PhaseStat
	snap   []int64
}

// PhaseStat records the cost of one executed phase.
type PhaseStat struct {
	Name    string
	Rounds  int64 // max probes by a single player in the phase
	Players int
}

// NewClock builds a Clock over a runner and engine.
func NewClock(r *Runner, e *probe.Engine) *Clock {
	return &Clock{Runner: r, Engine: e}
}

// Run executes f(p) for every p in players as one phase and accounts its
// round cost.
func (c *Clock) Run(name string, players []int, f func(p int)) {
	c.snap = c.Engine.Snapshot(c.snap)
	c.Runner.Phase(players, f)
	d := c.Engine.MaxDelta(c.snap)
	c.rounds += d
	c.phases = append(c.phases, PhaseStat{Name: name, Rounds: d, Players: len(players)})
}

// Rounds returns the accumulated parallel round count.
func (c *Clock) Rounds() int64 { return c.rounds }

// Phases returns per-phase statistics in execution order.
func (c *Clock) Phases() []PhaseStat { return c.phases }
