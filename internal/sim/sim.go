// Package sim runs the distributed algorithms: n players execute
// concurrently in lockstep phases separated by barriers.
//
// The paper's model is round-synchronous — in each round every player
// reads the billboard, probes one object, and posts. We simulate at the
// granularity of phases: within a phase each player performs some number
// of probes; player code within one phase never depends on another
// player's actions in the same phase, only on postings from completed
// phases, so the phase is embarrassingly parallel. The parallel round
// cost of a phase is the maximum number of probes any single player
// charged during it, which the Clock accumulates from probe-engine
// snapshots.
package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tellme/internal/probe"
	"tellme/internal/telemetry"
)

// PhaseRunner executes one per-player function per phase. Runner is the
// standard worker-pool implementation; LockstepRunner executes under
// the strict one-probe-per-round model for validation.
type PhaseRunner interface {
	// Phase runs f(p) for every p in players and returns when all
	// complete (the barrier).
	Phase(players []int, f func(p int))
	// PhaseAll runs f for players 0..n-1.
	PhaseAll(n int, f func(p int))
}

// Runner executes per-player functions concurrently with a bounded
// worker pool. It is reusable across phases and safe for sequential use
// from one coordinating goroutine.
type Runner struct {
	workers int
}

var _ PhaseRunner = (*Runner)(nil)

// NewRunner returns a Runner with the given parallelism; if workers <= 0
// it defaults to GOMAXPROCS.
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: workers}
}

// Phase runs f(p) for every p in players concurrently and returns when
// all calls complete (the barrier). Panics inside f are propagated to
// the caller after all workers stop; every player still runs.
func (r *Runner) Phase(players []int, f func(p int)) {
	n := len(players)
	if n == 0 {
		return
	}
	if r.width(n) == 1 {
		for _, p := range players {
			f(p)
		}
		return
	}
	r.parallel(n, func(i int) { f(players[i]) })
}

// PhaseAll runs f for players 0..n-1, without materializing the id list.
func (r *Runner) PhaseAll(n int, f func(p int)) {
	if n == 0 {
		return
	}
	if r.width(n) == 1 {
		for p := 0; p < n; p++ {
			f(p)
		}
		return
	}
	r.parallel(n, f)
}

// width is the worker count for a phase of n items.
func (r *Runner) width(n int) int {
	if r.workers < n {
		return r.workers
	}
	return n
}

// parallel dispatches g(0..n-1) over width(n) workers. Work is handed
// out in chunks claimed off one atomic counter — no mutex, no per-item
// closure, and the worker body is a single closure shared by all
// goroutines, so a phase allocates O(workers) regardless of n.
func (r *Runner) parallel(n int, g func(i int)) {
	w := r.width(n)
	chunk := n / (w * 4)
	if chunk < 1 {
		chunk = 1
	} else if chunk > 64 {
		chunk = 64
	}
	var (
		next       atomic.Int64
		firstPanic atomic.Pointer[any]
		wg         sync.WaitGroup
	)
	// Per-call recovery keeps the original barrier semantics: one
	// panicking player does not stop the others; the first recorded
	// panic is rethrown after the barrier.
	call := func(i int) {
		defer func() {
			if rec := recover(); rec != nil {
				firstPanic.CompareAndSwap(nil, &rec)
			}
		}()
		g(i)
	}
	worker := func() {
		defer wg.Done()
		for {
			end := int(next.Add(int64(chunk)))
			start := end - chunk
			if start >= n {
				return
			}
			if end > n {
				end = n
			}
			for i := start; i < end; i++ {
				call(i)
			}
		}
	}
	wg.Add(w)
	for i := 0; i < w; i++ {
		go worker()
	}
	wg.Wait()
	if rec := firstPanic.Load(); rec != nil {
		panic(*rec)
	}
}

// Clock converts phases into the paper's parallel round count. Each
// Run() executes one phase and charges it max-probes-per-player rounds,
// and records the phase's wall-clock time alongside.
type Clock struct {
	Runner *Runner
	Engine *probe.Engine
	// Telemetry, when non-nil, receives per-phase wall time and round
	// counts: a "sim.phase.ns" histogram over all phases plus
	// "sim.phase.<name>.{calls,rounds,ns}" counters per phase name.
	Telemetry *telemetry.Registry

	rounds int64
	phases []PhaseStat
	snap   []int64

	// Cached instruments, resolved on first use per phase name: Run
	// executes thousands of phases, so the registry's mutex-guarded
	// get-or-create (and the name concatenation) must not happen per
	// phase. Unsynchronized like the rest of the Clock state — a Clock
	// is owned by one coordinator goroutine.
	telHist   *telemetry.Histogram
	telPhases map[string]phaseTel
}

// phaseTel is one phase name's resolved counters.
type phaseTel struct {
	calls, rounds, ns *telemetry.Counter
}

// PhaseStat records the cost of one executed phase.
type PhaseStat struct {
	Name    string
	Rounds  int64 // max probes by a single player in the phase
	Players int
	// Elapsed is the phase's wall-clock duration (simulator time, not a
	// model cost — rounds is the paper's cost measure).
	Elapsed time.Duration
}

// NewClock builds a Clock over a runner and engine.
func NewClock(r *Runner, e *probe.Engine) *Clock {
	return &Clock{Runner: r, Engine: e}
}

// Run executes f(p) for every p in players as one phase and accounts its
// round cost.
func (c *Clock) Run(name string, players []int, f func(p int)) {
	c.snap = c.Engine.Snapshot(c.snap)
	start := time.Now()
	c.Runner.Phase(players, f)
	elapsed := time.Since(start)
	d := c.Engine.MaxDelta(c.snap)
	c.rounds += d
	c.phases = append(c.phases, PhaseStat{Name: name, Rounds: d, Players: len(players), Elapsed: elapsed})
	if tel := c.Telemetry; tel != nil {
		if c.telHist == nil {
			c.telHist = tel.Histogram("sim.phase.ns", telemetry.LatencyBuckets())
			c.telPhases = make(map[string]phaseTel)
		}
		pt, ok := c.telPhases[name]
		if !ok {
			pt = phaseTel{
				calls:  tel.Counter("sim.phase." + name + ".calls"),
				rounds: tel.Counter("sim.phase." + name + ".rounds"),
				ns:     tel.Counter("sim.phase." + name + ".ns"),
			}
			c.telPhases[name] = pt
		}
		c.telHist.Observe(elapsed.Nanoseconds())
		pt.calls.Inc()
		pt.rounds.Add(d)
		pt.ns.Add(elapsed.Nanoseconds())
	}
}

// Rounds returns the accumulated parallel round count.
func (c *Clock) Rounds() int64 { return c.rounds }

// Phases returns per-phase statistics in execution order.
func (c *Clock) Phases() []PhaseStat { return c.phases }
