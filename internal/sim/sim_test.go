package sim

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"tellme/internal/billboard"
	"tellme/internal/ints"
	"tellme/internal/prefs"
	"tellme/internal/probe"
	"tellme/internal/rng"
)

func TestPhaseRunsEveryPlayerOnce(t *testing.T) {
	r := NewRunner(4)
	var counts [100]atomic.Int32
	players := make([]int, 100)
	for i := range players {
		players[i] = i
	}
	r.Phase(nil, players, func(p int) { counts[p].Add(1) })
	for p := range counts {
		if got := counts[p].Load(); got != 1 {
			t.Fatalf("player %d ran %d times", p, got)
		}
	}
}

func TestPhaseSubset(t *testing.T) {
	r := NewRunner(2)
	var sum atomic.Int64
	r.Phase(nil, []int{3, 5, 9}, func(p int) { sum.Add(int64(p)) })
	if sum.Load() != 17 {
		t.Fatalf("sum = %d", sum.Load())
	}
}

func TestPhaseEmpty(t *testing.T) {
	NewRunner(0).Phase(nil, nil, func(p int) { t.Fatal("called on empty set") })
}

func TestPhaseSingleWorkerSequential(t *testing.T) {
	r := NewRunner(1)
	order := []int{}
	r.Phase(nil, []int{4, 2, 7}, func(p int) { order = append(order, p) })
	if len(order) != 3 || order[0] != 4 || order[1] != 2 || order[2] != 7 {
		t.Fatalf("order = %v", order)
	}
}

func TestPhasePanicBecomesError(t *testing.T) {
	var ran atomic.Int32
	err := NewRunner(4).PhaseAll(nil, 10, func(p int) {
		ran.Add(1)
		if p == 5 {
			panic("boom")
		}
	})
	var perr *PanicError
	if !errors.As(err, &perr) {
		t.Fatalf("err = %T %v, want *PanicError", err, err)
	}
	if perr.Value != "boom" {
		t.Fatalf("panic value = %v", perr.Value)
	}
	if len(perr.Stack) == 0 {
		t.Fatal("panic stack not captured")
	}
	// The barrier completed: the panicking player did not abandon the
	// other workers' work.
	if ran.Load() != 10 {
		t.Fatalf("%d of 10 players ran", ran.Load())
	}
}

func TestMustPhaseAllRepanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("panic not propagated")
		}
	}()
	MustPhaseAll(NewRunner(4), 10, func(p int) {
		if p == 5 {
			panic("boom")
		}
	})
}

func TestPhaseObservesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := NewRunner(4).PhaseAll(ctx, 1000, func(p int) { ran.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() == 1000 {
		t.Fatal("cancelled phase still ran every player")
	}
}

func TestPhaseCancelMidway(t *testing.T) {
	// Cancel from inside player code: workers must stop claiming new
	// chunks and the barrier must still complete without deadlock.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int32
	err := NewRunner(4).PhaseAll(ctx, 10000, func(p int) {
		if ran.Add(1) == 50 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n < 50 || n == 10000 {
		t.Fatalf("ran %d players, want >=50 and <10000", n)
	}
}

func TestPhaseAll(t *testing.T) {
	r := NewRunner(8)
	var n atomic.Int32
	r.PhaseAll(nil, 50, func(p int) { n.Add(1) })
	if n.Load() != 50 {
		t.Fatalf("ran %d players", n.Load())
	}
}

func TestClockRoundsAreMaxPerPlayer(t *testing.T) {
	in := prefs.Planted(8, 64, 0.5, 2, 1)
	b := billboard.New(in.N, in.M)
	e := probe.NewEngine(in, b, rng.NewSource(1))
	c := NewClock(NewRunner(4), e)
	// Phase 1: player p probes p+1 objects → max 8 rounds.
	c.Run(nil, "uneven", []int{0, 1, 2, 3, 4, 5, 6, 7}, func(p int) {
		pl := e.Player(p)
		for o := 0; o <= p; o++ {
			pl.Probe(o)
		}
	})
	if c.Rounds() != 8 {
		t.Fatalf("Rounds = %d, want 8", c.Rounds())
	}
	// Phase 2: everyone probes 3 → +3.
	c.Run(nil, "even", []int{0, 1, 2, 3}, func(p int) {
		pl := e.Player(p)
		for o := 10; o < 13; o++ {
			pl.Probe(o)
		}
	})
	if c.Rounds() != 11 {
		t.Fatalf("Rounds = %d, want 11", c.Rounds())
	}
	stats := c.Phases()
	if len(stats) != 2 || stats[0].Name != "uneven" || stats[0].Rounds != 8 || stats[1].Rounds != 3 {
		t.Fatalf("Phases = %+v", stats)
	}
	if stats[0].Players != 8 || stats[1].Players != 4 {
		t.Fatalf("player counts = %+v", stats)
	}
}

func TestClockZeroProbePhase(t *testing.T) {
	in := prefs.Planted(4, 16, 0.5, 2, 1)
	b := billboard.New(in.N, in.M)
	e := probe.NewEngine(in, b, rng.NewSource(1))
	c := NewClock(NewRunner(2), e)
	c.Run(nil, "free", []int{0, 1, 2, 3}, func(p int) {}) // billboard-only phase
	if c.Rounds() != 0 {
		t.Fatalf("free phase cost %d rounds", c.Rounds())
	}
}

func TestConcurrentPhaseWithProbes(t *testing.T) {
	in := prefs.Planted(64, 256, 0.5, 8, 2)
	b := billboard.New(in.N, in.M)
	e := probe.NewEngine(in, b, rng.NewSource(3))
	c := NewClock(NewRunner(0), e)
	c.Run(nil, "all-probe", allPlayers(in.N), func(p int) {
		pl := e.Player(p)
		for o := 0; o < in.M; o++ {
			if pl.Probe(o) != in.Grade(p, o) {
				t.Errorf("bad grade")
				return
			}
		}
	})
	if c.Rounds() != int64(in.M) {
		t.Fatalf("Rounds = %d, want %d", c.Rounds(), in.M)
	}
}

func allPlayers(n int) []int { return ints.Iota(n) }

func BenchmarkPhaseOverhead(b *testing.B) {
	r := NewRunner(0)
	players := allPlayers(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Phase(nil, players, func(p int) {})
	}
}

// BenchmarkPhaseParallelScaling measures wall-clock scaling of the
// phase runner across worker counts on a CPU-bound per-player task.
func BenchmarkPhaseParallelScaling(b *testing.B) {
	players := allPlayers(256)
	work := func(p int) {
		s := uint64(p + 1)
		for i := 0; i < 20000; i++ {
			s = s*6364136223846793005 + 1442695040888963407
		}
		if s == 42 {
			b.Fatal("unreachable")
		}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			r := NewRunner(workers)
			for i := 0; i < b.N; i++ {
				r.Phase(nil, players, work)
			}
		})
	}
}
