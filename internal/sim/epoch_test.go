package sim

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
)

func TestEpochChurnAppliesOnlyAtBoundary(t *testing.T) {
	s := NewEpochScheduler()
	s.Join(3)
	s.Join(1)
	plan := s.BeginEpoch()
	if want := []int{1, 3}; !reflect.DeepEqual(plan.Members, want) {
		t.Fatalf("members %v, want %v", plan.Members, want)
	}
	if !reflect.DeepEqual(plan.Joined, []int{1, 3}) {
		t.Fatalf("joined %v, want [1 3]", plan.Joined)
	}
	// Churn arriving mid-epoch must not affect the running epoch.
	s.Join(7)
	s.Leave(1)
	if got := s.Members(); !reflect.DeepEqual(got, []int{1, 3}) {
		t.Fatalf("mid-epoch members %v, want [1 3]", got)
	}
	s.Complete()
	if s.CompletedEpochs() != 1 {
		t.Fatalf("completed %d, want 1", s.CompletedEpochs())
	}
	plan = s.BeginEpoch()
	if want := []int{3, 7}; !reflect.DeepEqual(plan.Members, want) {
		t.Fatalf("epoch 2 members %v, want %v", plan.Members, want)
	}
	if !reflect.DeepEqual(plan.Joined, []int{7}) || !reflect.DeepEqual(plan.Left, []int{1}) {
		t.Fatalf("epoch 2 joined %v left %v, want [7] [1]", plan.Joined, plan.Left)
	}
	if plan.Epoch != 2 {
		t.Fatalf("epoch number %d, want 2", plan.Epoch)
	}
	s.Complete()
}

func TestEpochJoinLeaveCancelOut(t *testing.T) {
	s := NewEpochScheduler()
	s.Join(5)
	s.Leave(5)
	plan := s.BeginEpoch()
	if len(plan.Members) != 0 || len(plan.Joined) != 0 || len(plan.Left) != 0 {
		t.Fatalf("join+leave should cancel: %+v", plan)
	}
	s.Complete()
	// Leave then re-join of an active slot: stays a member, neither
	// joined nor left.
	s.Join(5)
	s.BeginEpoch()
	s.Complete()
	s.Leave(5)
	s.Join(5)
	plan = s.BeginEpoch()
	if !reflect.DeepEqual(plan.Members, []int{5}) || len(plan.Joined) != 0 || len(plan.Left) != 0 {
		// Net effect at the boundary: the slot stayed a member, so it
		// is neither joined nor left.
		t.Fatalf("leave+join plan %+v, want member [5] with no net churn", plan)
	}
	s.Complete()
}

func TestEpochAbortKeepsMembershipWithoutCompleting(t *testing.T) {
	s := NewEpochScheduler()
	s.Join(0)
	s.Join(1)
	plan, err := s.Epoch(context.Background(), func(EpochPlan) error {
		return errors.New("boom")
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err %v, want boom", err)
	}
	if s.CompletedEpochs() != 0 {
		t.Fatalf("aborted epoch must not complete: %d", s.CompletedEpochs())
	}
	if !reflect.DeepEqual(plan.Members, []int{0, 1}) {
		t.Fatalf("plan members %v", plan.Members)
	}
	// Admissions stand after the abort; the next epoch reuses them and
	// the epoch number is re-issued (no snapshot was published for it).
	plan2, err := s.Epoch(context.Background(), func(EpochPlan) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if plan2.Epoch != 1 || !reflect.DeepEqual(plan2.Members, []int{0, 1}) || len(plan2.Joined) != 0 {
		t.Fatalf("post-abort plan %+v, want epoch 1 members [0 1] no churn", plan2)
	}
	if s.CompletedEpochs() != 1 {
		t.Fatalf("completed %d, want 1", s.CompletedEpochs())
	}
}

func TestEpochPreCancelledContextSkipsBoundary(t *testing.T) {
	s := NewEpochScheduler()
	s.Join(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.Epoch(ctx, func(EpochPlan) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending churn consumed by a skipped boundary: %d", s.Pending())
	}
	if s.CompletedEpochs() != 0 {
		t.Fatalf("completed %d, want 0", s.CompletedEpochs())
	}
}

func TestEpochBeginWhileInFlightPanics(t *testing.T) {
	s := NewEpochScheduler()
	s.BeginEpoch()
	defer func() {
		if recover() == nil {
			t.Fatal("nested BeginEpoch must panic")
		}
	}()
	s.BeginEpoch()
}

// TestEpochConcurrentChurnCannotTearAnEpoch hammers Join/Leave from
// many goroutines while epochs run, asserting (under -race) that the
// member set observed by each epoch body never changes mid-epoch and
// every churned slot is eventually admitted.
func TestEpochConcurrentChurnCannotTearAnEpoch(t *testing.T) {
	s := NewEpochScheduler()
	const churners = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if i%3 == 0 {
					s.Leave(c)
				} else {
					s.Join(c)
				}
			}
		}(c)
	}
	runner := NewRunner(2)
	for e := 0; e < 50; e++ {
		_, err := s.Epoch(context.Background(), func(plan EpochPlan) error {
			before := append([]int{}, plan.Members...)
			// Run a real phase over the plan's members: the barrier
			// drains before Epoch completes, and membership is fixed.
			if err := runner.Phase(context.Background(), plan.Members, func(p int) {}); err != nil {
				return err
			}
			if got := s.Members(); !reflect.DeepEqual(got, before) {
				t.Errorf("members changed mid-epoch: %v -> %v", before, got)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if s.CompletedEpochs() != 50 {
		t.Fatalf("completed %d, want 50", s.CompletedEpochs())
	}
}

func TestEpochJoinAllMatchesSequentialJoins(t *testing.T) {
	a := NewEpochScheduler()
	b := NewEpochScheduler()
	slots := []int{4, 1, 7, 1} // duplicate admission is a boundary no-op
	for _, s := range slots {
		a.Join(s)
	}
	b.JoinAll(slots)
	b.JoinAll(nil) // no-op, no lock churn
	if a.Pending() != 4 || b.Pending() != 4 {
		t.Fatalf("pending = %d/%d, want 4/4", a.Pending(), b.Pending())
	}
	pa, pb := a.BeginEpoch(), b.BeginEpoch()
	a.Complete()
	b.Complete()
	if len(pa.Members) != 3 || len(pb.Members) != 3 {
		t.Fatalf("members = %v / %v, want 3 each", pa.Members, pb.Members)
	}
	for i := range pa.Members {
		if pa.Members[i] != pb.Members[i] || pa.Joined[i] != pb.Joined[i] {
			t.Fatalf("plans diverge: %+v vs %+v", pa, pb)
		}
	}
}
