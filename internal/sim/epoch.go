package sim

import (
	"context"
	"sort"
	"sync"
)

// EpochScheduler lifts the round-lockstep discipline of Gate from round
// granularity to epoch granularity for long-lived serving: a population
// of player slots runs an unbounded sequence of epochs (one full
// algorithm run each), and players may join or leave at any time — but
// membership changes are applied only at epoch boundaries.
//
// This is the churn contract of the serving daemon (cmd/tellmed): the
// phases inside an epoch run through the ordinary PhaseRunner, whose
// workers drain at the phase barrier before the coordinator moves on,
// so a phase always executes against a fixed member set. The scheduler
// adds the outer invariant: Join and Leave only *enqueue* churn; the
// pending queue is applied when the coordinator calls Epoch (or
// BeginEpoch), never while an epoch is in flight. A churn event can
// therefore never tear a phase — the epoch it lands in simply hasn't
// started yet.
//
// The scheduler tracks slots (small ints), not application identities:
// the serving layer maps external player ids onto slots and back.
// Exactly one goroutine — the epoch coordinator — may call
// Epoch/BeginEpoch/Complete/Abort; Join, Leave and the read accessors
// are safe from any goroutine.
type EpochScheduler struct {
	mu        sync.Mutex
	active    map[int]bool
	pending   []churnOp
	inEpoch   bool
	completed int64
}

// churnOp is one queued membership change, applied in FIFO order at the
// next epoch boundary (so a Join followed by a Leave of the same slot
// before the boundary cancels out, and the reverse order re-admits).
type churnOp struct {
	slot int
	join bool
}

// EpochPlan describes one epoch the coordinator is about to run: the
// epoch number, the member slots participating, and the churn applied
// at this boundary.
type EpochPlan struct {
	// Epoch is the 1-based number of the epoch about to run; it becomes
	// the scheduler's CompletedEpochs value once Complete is called.
	Epoch int64
	// Members are the active slots for this epoch, ascending.
	Members []int
	// Joined are the slots admitted at this boundary (subset of
	// Members), ascending.
	Joined []int
	// Left are the slots retired at this boundary — they do NOT
	// participate in this epoch. Ascending.
	Left []int
}

// NewEpochScheduler returns an empty scheduler: no members, no pending
// churn, zero completed epochs.
func NewEpochScheduler() *EpochScheduler {
	return &EpochScheduler{active: make(map[int]bool)}
}

// Join enqueues the admission of slot at the next epoch boundary.
// Joining a slot that is already active (and not retired by a pending
// Leave) is a no-op at application time.
func (s *EpochScheduler) Join(slot int) {
	s.mu.Lock()
	s.pending = append(s.pending, churnOp{slot: slot, join: true})
	s.mu.Unlock()
}

// JoinAll enqueues the admission of every slot in slots at the next
// epoch boundary, under one lock acquisition. Semantically identical to
// calling Join for each slot in order; it exists so bulk admission of a
// large fleet doesn't take len(slots) lock round trips.
func (s *EpochScheduler) JoinAll(slots []int) {
	if len(slots) == 0 {
		return
	}
	s.mu.Lock()
	for _, slot := range slots {
		s.pending = append(s.pending, churnOp{slot: slot, join: true})
	}
	s.mu.Unlock()
}

// Leave enqueues the retirement of slot at the next epoch boundary. An
// epoch already running still computes the slot's output; the slot
// stops participating from the next epoch on. Leaving an inactive slot
// is a no-op at application time.
func (s *EpochScheduler) Leave(slot int) {
	s.mu.Lock()
	s.pending = append(s.pending, churnOp{slot: slot, join: false})
	s.mu.Unlock()
}

// Pending returns the number of queued churn operations — the serving
// loop uses it to schedule an epoch early instead of waiting out the
// full interval.
func (s *EpochScheduler) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Members returns the currently active slots, ascending. Between
// BeginEpoch and Complete/Abort this is the running epoch's member set.
func (s *EpochScheduler) Members() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return sortedKeys(s.active)
}

// CompletedEpochs returns how many epochs have completed — the epoch
// number recommendation snapshots are stamped with.
func (s *EpochScheduler) CompletedEpochs() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.completed
}

// NextEpoch returns the number the next epoch will carry.
func (s *EpochScheduler) NextEpoch() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.completed + 1
}

// BeginEpoch applies all pending churn in FIFO order and returns the
// plan of the epoch about to run. It panics if an epoch is already in
// flight — the scheduler serializes one coordinator by contract.
// Prefer Epoch, which brackets Begin/Complete/Abort correctly.
func (s *EpochScheduler) BeginEpoch() EpochPlan {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inEpoch {
		panic("sim: BeginEpoch while an epoch is in flight")
	}
	s.inEpoch = true
	joined := make(map[int]bool)
	left := make(map[int]bool)
	// Joined/Left report the boundary's *net* effect: a slot that both
	// joins and leaves (in either order) within one boundary appears in
	// neither list.
	for _, op := range s.pending {
		if op.join && !s.active[op.slot] {
			s.active[op.slot] = true
			if left[op.slot] {
				delete(left, op.slot)
			} else {
				joined[op.slot] = true
			}
		} else if !op.join && s.active[op.slot] {
			delete(s.active, op.slot)
			if joined[op.slot] {
				delete(joined, op.slot)
			} else {
				left[op.slot] = true
			}
		}
	}
	s.pending = s.pending[:0]
	return EpochPlan{
		Epoch:   s.completed + 1,
		Members: sortedKeys(s.active),
		Joined:  sortedKeys(joined),
		Left:    sortedKeys(left),
	}
}

// Complete marks the in-flight epoch as completed, incrementing the
// completed-epoch counter.
func (s *EpochScheduler) Complete() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.inEpoch {
		panic("sim: Complete without BeginEpoch")
	}
	s.inEpoch = false
	s.completed++
}

// Abort marks the in-flight epoch as abandoned: the completed-epoch
// counter does not advance (no snapshot may be published for it), but
// the churn applied at BeginEpoch stands — admissions and retirements
// happened at the boundary; only the epoch's outputs are void.
func (s *EpochScheduler) Abort() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.inEpoch {
		panic("sim: Abort without BeginEpoch")
	}
	s.inEpoch = false
}

// Epoch runs one epoch: it applies pending churn, invokes body with the
// plan, and completes the epoch if body returns nil (aborts it
// otherwise, returning body's error). A context already cancelled when
// Epoch is called skips the boundary entirely — no churn is applied, no
// epoch number is consumed.
func (s *EpochScheduler) Epoch(ctx context.Context, body func(EpochPlan) error) (EpochPlan, error) {
	if ctx != nil && ctx.Err() != nil {
		return EpochPlan{}, context.Cause(ctx)
	}
	plan := s.BeginEpoch()
	if err := body(plan); err != nil {
		s.Abort()
		return plan, err
	}
	s.Complete()
	return plan, nil
}

// sortedKeys returns m's keys ascending.
func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
