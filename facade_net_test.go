package tellme

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tellme/internal/billboard"
	"tellme/internal/netboard"
	"tellme/internal/netboard/faultnet"
)

func TestRunAgainstRemoteBoard(t *testing.T) {
	in := IdenticalInstance(48, 48, 0.5, 21)

	local, err := Run(in, Options{Algorithm: AlgoZero, Alpha: 0.5, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}

	// Both wire codecs must reproduce the local run byte for byte.
	for _, codec := range []string{"json", "binary"} {
		t.Run(codec, func(t *testing.T) {
			board := billboard.New(in.N, in.M)
			srv := httptest.NewServer(netboard.NewServer(board))
			defer srv.Close()
			remote, err := Run(in, Options{Algorithm: AlgoZero, Alpha: 0.5, Seed: 22, BoardURL: srv.URL, BoardCodec: codec})
			if err != nil {
				t.Fatal(err)
			}

			// Determinism: identical outputs local vs remote.
			for p := 0; p < in.N; p++ {
				if !local.Outputs[p].Equal(remote.Outputs[p]) {
					t.Fatalf("player %d output differs between local and remote board", p)
				}
			}
			if local.MaxProbes != remote.MaxProbes {
				t.Fatalf("probe accounting differs: %d vs %d", local.MaxProbes, remote.MaxProbes)
			}
			// The remote board really saw the traffic.
			if board.ProbeCount() == 0 || board.VectorPostCount() != 0 {
				// vector topics are dropped at the end of ZeroRadius, but probe
				// postings persist
				if board.ProbeCount() == 0 {
					t.Fatal("remote board saw no probes")
				}
			}
		})
	}
}

func TestRunRejectsUnknownCodec(t *testing.T) {
	in := IdenticalInstance(8, 8, 0.5, 21)
	if _, err := Run(in, Options{Algorithm: AlgoZero, Alpha: 0.5, Seed: 1, BoardURL: "http://localhost:1", BoardCodec: "gob"}); err == nil {
		t.Fatal("unknown BoardCodec accepted")
	}
}

func TestRunOverFlakyTransport(t *testing.T) {
	// A run through Options.Board with a fault-injecting transport must
	// produce exactly the outputs of a local run: retries recover every
	// dropped request, and request-id dedupe absorbs every re-delivery
	// of a post the server already committed.
	in := IdenticalInstance(48, 48, 0.5, 21)
	local, err := Run(in, Options{Algorithm: AlgoZero, Alpha: 0.5, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}

	board := billboard.New(in.N, in.M)
	srv := httptest.NewServer(netboard.NewServer(board))
	defer srv.Close()
	ft := faultnet.New(nil, 33)
	ft.DropRequest, ft.DropResponse, ft.Duplicate = 0.1, 0.1, 0.2
	client := netboard.NewClient(srv.URL)
	client.HTTPClient = &http.Client{Transport: ft}
	client.Retries = 40
	client.RetryBackoff = 100 * time.Microsecond

	remote, err := Run(in, Options{Algorithm: AlgoZero, Alpha: 0.5, Seed: 22, Board: client})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < in.N; p++ {
		if !local.Outputs[p].Equal(remote.Outputs[p]) {
			t.Fatalf("player %d output differs under flaky transport", p)
		}
	}
	if local.MaxProbes != remote.MaxProbes {
		t.Fatalf("probe accounting differs: %d vs %d", local.MaxProbes, remote.MaxProbes)
	}
	if ft.DroppedRequests()+ft.LostResponses()+ft.Duplicated() == 0 {
		t.Fatal("fault schedule never fired; test proves nothing")
	}
}

func TestSaveLoadInstanceFacade(t *testing.T) {
	in := PlantedInstance(32, 64, 0.5, 6, 23)
	var buf bytes.Buffer
	if err := SaveInstance(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := LoadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != in.N || got.M != in.M {
		t.Fatalf("dims %dx%d", got.N, got.M)
	}
	for p := 0; p < in.N; p++ {
		if !got.Truth[p].Equal(in.Truth[p]) {
			t.Fatalf("row %d differs", p)
		}
	}
	// loaded instance runs identically
	a, err := Run(in, Options{Algorithm: AlgoSmall, Alpha: 0.5, D: 6, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(got, Options{Algorithm: AlgoSmall, Alpha: 0.5, D: 6, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < in.N; p++ {
		if !a.Outputs[p].Equal(b.Outputs[p]) {
			t.Fatalf("run on loaded instance diverged at %d", p)
		}
	}

	var jbuf bytes.Buffer
	if err := SaveInstanceJSON(&jbuf, in); err != nil {
		t.Fatal(err)
	}
	got2, err := LoadInstanceJSON(&jbuf)
	if err != nil {
		t.Fatal(err)
	}
	if got2.N != in.N {
		t.Fatal("JSON round trip failed")
	}
}

func TestRunReportsSubAlgorithmCounts(t *testing.T) {
	in := PlantedInstance(128, 128, 0.5, 16, 25)
	rep, err := Run(in, Options{Algorithm: AlgoLarge, Alpha: 0.5, D: 16, Seed: 26})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SubAlgorithmRuns["LargeRadius"] != 1 {
		t.Fatalf("LargeRadius count %d", rep.SubAlgorithmRuns["LargeRadius"])
	}
	if rep.SubAlgorithmRuns["ZeroRadius"] < 1 || rep.SubAlgorithmRuns["SmallRadius"] < 1 {
		t.Fatalf("missing nested counts: %v", rep.SubAlgorithmRuns)
	}
}
