package tellme

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"tellme/internal/bitvec"
)

// reportJSON is the serialized shape of a Report (outputs as
// '0'/'1'/'?' strings; trace events flattened to their string form).
type reportJSON struct {
	Algorithm   string            `json:"algorithm"`
	Outputs     []string          `json:"outputs"`
	MaxProbes   int64             `json:"maxProbes"`
	TotalProbes int64             `json:"totalProbes"`
	MeanProbes  float64           `json:"meanProbes"`
	DurationNS  int64             `json:"durationNs"`
	Communities []CommunityReport `json:"communities,omitempty"`
	SubRuns     map[string]int64  `json:"subAlgorithmRuns,omitempty"`
	Trace       []string          `json:"trace,omitempty"`
}

// SaveReport writes a run report as JSON, suitable for archiving next
// to the instance that produced it (SaveInstance).
func SaveReport(w io.Writer, rep *Report) error {
	if rep == nil {
		return fmt.Errorf("tellme: nil report")
	}
	doc := reportJSON{
		Algorithm:   rep.Algorithm.String(),
		Outputs:     make([]string, len(rep.Outputs)),
		MaxProbes:   rep.MaxProbes,
		TotalProbes: rep.TotalProbes,
		MeanProbes:  rep.MeanProbes,
		DurationNS:  rep.Duration.Nanoseconds(),
		Communities: rep.Communities,
		SubRuns:     rep.SubAlgorithmRuns,
	}
	for p, o := range rep.Outputs {
		doc.Outputs[p] = o.String()
	}
	for _, e := range rep.TraceEvents {
		doc.Trace = append(doc.Trace, e.String())
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// LoadReport reads a report written by SaveReport. The Algorithm field
// round-trips as its display name only, and trace events as rendered
// strings; outputs and all quantitative fields round-trip exactly.
func LoadReport(r io.Reader) (*Report, []string, error) {
	var doc reportJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, nil, fmt.Errorf("tellme: %w", err)
	}
	rep := &Report{
		MaxProbes:        doc.MaxProbes,
		TotalProbes:      doc.TotalProbes,
		MeanProbes:       doc.MeanProbes,
		Duration:         time.Duration(doc.DurationNS),
		Communities:      doc.Communities,
		SubAlgorithmRuns: doc.SubRuns,
	}
	rep.Outputs = make([]Partial, len(doc.Outputs))
	for p, s := range doc.Outputs {
		v, err := bitvec.PartialFromString(s)
		if err != nil {
			return nil, nil, fmt.Errorf("tellme: output %d: %w", p, err)
		}
		rep.Outputs[p] = v
	}
	return rep, doc.Trace, nil
}
