package tellme

import (
	"testing"

	"tellme/internal/rng"
)

func TestValueBits(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 17: 5}
	for nv, want := range cases {
		if got := ValueBits(nv); got != want {
			t.Fatalf("ValueBits(%d) = %d, want %d", nv, got, want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	values := [][]int{
		{0, 1, 2, 3, 4},
		{4, 3, 2, 1, 0},
		{2, 2, 2, 2, 2},
	}
	in, err := EncodeValuesInstance(values, 5)
	if err != nil {
		t.Fatal(err)
	}
	if in.N != 3 || in.M != 5*3 { // ValueBits(5) = 3
		t.Fatalf("dims %dx%d", in.N, in.M)
	}
	for p, row := range values {
		got, undecided := DecodeValues(PartialOfVector(in.Vector(p)), 5, 5)
		if undecided != 0 {
			t.Fatalf("undecided %d", undecided)
		}
		for o := range row {
			if got[o] != row[o] {
				t.Fatalf("player %d object %d: %d != %d", p, o, got[o], row[o])
			}
		}
	}
}

func TestEncodeValuesValidation(t *testing.T) {
	if _, err := EncodeValuesInstance(nil, 4); err == nil {
		t.Fatal("empty matrix accepted")
	}
	if _, err := EncodeValuesInstance([][]int{{0}}, 1); err == nil {
		t.Fatal("numValues 1 accepted")
	}
	if _, err := EncodeValuesInstance([][]int{{0, 1}, {0}}, 4); err == nil {
		t.Fatal("ragged matrix accepted")
	}
	if _, err := EncodeValuesInstance([][]int{{4}}, 4); err == nil {
		t.Fatal("out-of-range value accepted")
	}
	if _, err := EncodeValuesInstance([][]int{{-1}}, 4); err == nil {
		t.Fatal("negative value accepted")
	}
}

func TestMultiValuedZeroRadiusEndToEnd(t *testing.T) {
	// A community of sensors reporting 5-level readings; outsiders are
	// random. The binary reduction preserves the community, so AlgoZero
	// recovers every member's full multi-valued row exactly.
	const (
		n, m, nv = 120, 100, 5
		commSize = 70
	)
	r := rng.New(9)
	shared := make([]int, m)
	for o := range shared {
		shared[o] = r.Intn(nv)
	}
	values := make([][]int, n)
	for p := 0; p < n; p++ {
		if p < commSize {
			values[p] = shared
			continue
		}
		row := make([]int, m)
		for o := range row {
			row[o] = r.Intn(nv)
		}
		values[p] = row
	}
	in, err := EncodeValuesInstance(values, nv)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(in, Options{Algorithm: AlgoZero, Alpha: float64(commSize) / n, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < commSize; p++ {
		got, undecided := DecodeValues(rep.Outputs[p], m, nv)
		if undecided != 0 {
			t.Fatalf("player %d: %d undecided objects", p, undecided)
		}
		if d := ValueDist(got, shared); d != 0 {
			t.Fatalf("player %d: %d wrong values", p, d)
		}
	}
	if rep.MaxProbes >= int64(in.M) {
		t.Fatalf("multi-valued recovery cost %d ≥ solo %d", rep.MaxProbes, in.M)
	}
}

func TestValueDist(t *testing.T) {
	if d := ValueDist([]int{1, 2, 3}, []int{1, 0, 3}); d != 1 {
		t.Fatalf("ValueDist = %d", d)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	ValueDist([]int{1}, []int{1, 2})
}

func TestDecodeValuesClampsCorruption(t *testing.T) {
	// 3 values need 2 bits; bit pattern 11 (=3) exceeds the range and
	// must clamp to numValues-1.
	v := NewVector(2)
	v.Set(0, 1)
	v.Set(1, 1)
	got, _ := DecodeValues(PartialOfVector(v), 1, 3)
	if got[0] != 2 {
		t.Fatalf("decoded %d, want clamped 2", got[0])
	}
}
