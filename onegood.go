package tellme

import (
	"errors"

	"tellme/internal/billboard"
	"tellme/internal/onegood"
	"tellme/internal/probe"
	"tellme/internal/rng"
	"tellme/internal/sim"
)

// OneGoodResult reports a one-good-object run (the algorithm of the
// paper's reference [4]: Awerbuch, Patt-Shamir, Peleg, Tuttle,
// SODA 2005). Its objective is weaker than Run's: each player only
// needs to find a single object it likes.
type OneGoodResult struct {
	// Rounds is the number of synchronous rounds executed.
	Rounds int
	// FoundAt[p] is the round player p found a liked object (0 = never).
	FoundAt []int
	// Liked[p] is the liked object found (-1 = none).
	Liked []int
	// TotalProbes sums probes over all players.
	TotalProbes int64
	// Unsatisfied counts players that never found a liked object.
	Unsatisfied int
}

// OneGoodOptions configure RunOneGood.
type OneGoodOptions struct {
	// MaxRounds caps the run (0 = 4·m).
	MaxRounds int
	// RandomOnly disables recommendation sharing (the strawman
	// comparator: pure random probing).
	RandomOnly bool
	// Seed makes the run reproducible.
	Seed uint64
	// Parallelism bounds the worker pool (0 = GOMAXPROCS).
	Parallelism int
}

// RunOneGood executes the recommendation-propagation algorithm of [4]
// (or its random-probing strawman) until every satisfiable player found
// a liked object or MaxRounds elapsed.
func RunOneGood(in *Instance, opt OneGoodOptions) (*OneGoodResult, error) {
	if in == nil || in.N == 0 || in.M == 0 {
		return nil, errors.New("tellme: empty instance")
	}
	src := rng.NewSource(opt.Seed)
	board := billboard.New(in.N, in.M)
	engine := probe.NewEngine(in, board, src.Child("engine", 0))
	runner := sim.NewRunner(opt.Parallelism)
	var res onegood.Result
	if opt.RandomOnly {
		res = onegood.RandomOnly(engine, runner, src.Child("algo", 0), opt.MaxRounds)
	} else {
		res = onegood.Run(engine, runner, src.Child("algo", 0), opt.MaxRounds)
	}
	return &OneGoodResult{
		Rounds:      res.Rounds,
		FoundAt:     res.FoundAt,
		Liked:       res.Liked,
		TotalProbes: res.TotalProbes,
		Unsatisfied: res.Unsatisfied,
	}, nil
}
