package tellme

import (
	"testing"
)

func TestRunAutoOnPlanted(t *testing.T) {
	in := PlantedInstance(128, 128, 0.5, 6, 1)
	rep, err := Run(in, Options{Algorithm: AlgoAuto, Alpha: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outputs) != 128 {
		t.Fatalf("%d outputs", len(rep.Outputs))
	}
	if len(rep.Communities) != 1 {
		t.Fatalf("%d community reports", len(rep.Communities))
	}
	cr := rep.Communities[0]
	if cr.Stretch > 10 {
		t.Fatalf("stretch %v", cr.Stretch)
	}
	if rep.MaxProbes <= 0 || rep.TotalProbes < rep.MaxProbes {
		t.Fatalf("probe stats: %+v", rep)
	}
}

func TestRunZeroExact(t *testing.T) {
	in := IdenticalInstance(128, 128, 0.5, 3)
	rep, err := Run(in, Options{Algorithm: AlgoZero, Alpha: 0.5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Communities[0].Discrepancy != 0 {
		t.Fatalf("discrepancy %d", rep.Communities[0].Discrepancy)
	}
	if rep.MaxProbes >= int64(in.M) {
		t.Fatalf("MaxProbes %d not sublinear", rep.MaxProbes)
	}
}

func TestRunSmallBound(t *testing.T) {
	in := PlantedInstance(256, 256, 0.5, 4, 5)
	rep, err := Run(in, Options{Algorithm: AlgoSmall, Alpha: 0.5, D: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Communities[0].Discrepancy > 20 {
		t.Fatalf("discrepancy %d > 5D", rep.Communities[0].Discrepancy)
	}
}

func TestRunLarge(t *testing.T) {
	in := PlantedInstance(256, 256, 0.5, 24, 7)
	rep, err := Run(in, Options{Algorithm: AlgoLarge, Alpha: 0.5, D: 24, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Communities[0].Discrepancy > 24*8*2 {
		t.Fatalf("discrepancy %d", rep.Communities[0].Discrepancy)
	}
}

func TestRunMainDispatch(t *testing.T) {
	in := PlantedInstance(128, 128, 0.5, 0, 9)
	rep, err := Run(in, Options{Algorithm: AlgoMain, Alpha: 0.5, D: 0, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Communities[0].Discrepancy != 0 {
		t.Fatalf("main D=0 discrepancy %d", rep.Communities[0].Discrepancy)
	}
}

func TestRunAnytimePhases(t *testing.T) {
	in := PlantedInstance(128, 128, 0.25, 4, 11)
	var phases []PhaseInfo
	rep, err := Run(in, Options{
		Algorithm: AlgoAnytime,
		Seed:      12,
		OnPhase: func(ph PhaseInfo) bool {
			phases = append(phases, ph)
			return ph.Phase < 3
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) == 0 || phases[0].Phase != 1 {
		t.Fatalf("phases: %+v", phases)
	}
	for _, o := range rep.Outputs {
		if o.Len() != in.M {
			t.Fatal("incomplete output")
		}
	}
}

func TestRunReproducible(t *testing.T) {
	in := PlantedInstance(64, 64, 0.5, 4, 13)
	run := func() string {
		rep, err := Run(in, Options{Algorithm: AlgoAuto, Alpha: 0.5, Seed: 14})
		if err != nil {
			t.Fatal(err)
		}
		s := ""
		for _, o := range rep.Outputs {
			s += o.String()
		}
		return s
	}
	if run() != run() {
		t.Fatal("same seed produced different outputs")
	}
}

func TestRunValidation(t *testing.T) {
	in := PlantedInstance(16, 16, 0.5, 2, 15)
	if _, err := Run(nil, Options{Alpha: 0.5}); err == nil {
		t.Fatal("nil instance accepted")
	}
	if _, err := Run(in, Options{Alpha: 0}); err == nil {
		t.Fatal("alpha 0 accepted")
	}
	if _, err := Run(in, Options{Alpha: 1.5}); err == nil {
		t.Fatal("alpha > 1 accepted")
	}
	if _, err := Run(in, Options{Alpha: 0.5, D: 99}); err == nil {
		t.Fatal("D > m accepted")
	}
	if _, err := Run(in, Options{Alpha: 0.5, Algorithm: Algorithm(42)}); err == nil {
		t.Fatal("bad algorithm accepted")
	}
}

func TestRunWithNoise(t *testing.T) {
	// With heavy probe noise the guarantees vanish, but the run must
	// complete and produce total outputs.
	in := IdenticalInstance(64, 64, 0.5, 16)
	rep, err := Run(in, Options{Algorithm: AlgoZero, Alpha: 0.5, Seed: 17, FlipNoise: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Communities[0].Discrepancy == 0 {
		t.Log("noise run happened to be exact (unlikely but legal)")
	}
}

func TestRunCustomInstance(t *testing.T) {
	v1, _ := VectorFromString("0101")
	v2, _ := VectorFromString("0101")
	v3, _ := VectorFromString("1010")
	in := CustomInstance([]Vector{v1, v2, v3})
	rep, err := Run(in, Options{Algorithm: AlgoZero, Alpha: 0.6, Seed: 18})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Communities) != 0 {
		t.Fatal("custom instance should have no community metadata")
	}
	// Tiny instance: brute-force path, outputs exact for everyone.
	for p, want := range []Vector{v1, v2, v3} {
		if rep.Outputs[p].DistKnownVec(want) != 0 {
			t.Fatalf("player %d output wrong", p)
		}
	}
}

func TestAlgorithmString(t *testing.T) {
	names := map[Algorithm]string{
		AlgoAuto:       "auto(unknown D)",
		AlgoMain:       "main(known D)",
		AlgoZero:       "zero-radius",
		AlgoSmall:      "small-radius",
		AlgoLarge:      "large-radius",
		AlgoAnytime:    "anytime",
		Algorithm(100): "invalid",
	}
	for a, want := range names {
		if a.String() != want {
			t.Fatalf("%d.String() = %q", a, a.String())
		}
	}
}

func TestMultiCommunityInstanceReports(t *testing.T) {
	in := MultiCommunityInstance(128, 128, []CommunitySpec{
		{Alpha: 0.4, D: 0},
		{Alpha: 0.3, D: 4},
	}, 19)
	rep, err := Run(in, Options{Algorithm: AlgoAuto, Alpha: 0.3, Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Communities) != 2 {
		t.Fatalf("%d community reports", len(rep.Communities))
	}
}

func TestRunTracing(t *testing.T) {
	in := PlantedInstance(128, 128, 0.5, 16, 30)
	rep, err := Run(in, Options{
		Algorithm:     AlgoLarge,
		Alpha:         0.5,
		D:             16,
		Seed:          31,
		TraceCapacity: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.TraceEvents) == 0 {
		t.Fatal("tracing enabled but no events recorded")
	}
	kinds := map[string]int{}
	for _, e := range rep.TraceEvents {
		kinds[e.Kind]++
	}
	if kinds["largeradius.start"] != 1 || kinds["largeradius.end"] != 1 {
		t.Fatalf("largeradius spans: %v", kinds)
	}
	if kinds["zeroradius.start"] == 0 || kinds["smallradius.start"] == 0 {
		t.Fatalf("nested spans missing: %v", kinds)
	}
	// tracing must not change results
	plain, err := Run(in, Options{Algorithm: AlgoLarge, Alpha: 0.5, D: 16, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < in.N; p++ {
		if !plain.Outputs[p].Equal(rep.Outputs[p]) {
			t.Fatalf("tracing changed outputs at player %d", p)
		}
	}
	if plain.TraceEvents != nil {
		t.Fatal("trace events present without tracing")
	}
}

func TestRunBaselineValidation(t *testing.T) {
	in := PlantedInstance(16, 16, 0.5, 2, 60)
	if _, err := RunBaseline(nil, BaselineOptions{Baseline: BaselineSolo}); err == nil {
		t.Fatal("nil instance accepted")
	}
	if _, err := RunBaseline(in, BaselineOptions{Baseline: BaselineKNN}); err == nil {
		t.Fatal("zero budget accepted for sampled baseline")
	}
	if _, err := RunBaseline(in, BaselineOptions{Baseline: Baseline(42), Budget: 4}); err == nil {
		t.Fatal("unknown baseline accepted")
	}
	// solo needs no budget
	if _, err := RunBaseline(in, BaselineOptions{Baseline: BaselineSolo}); err != nil {
		t.Fatal(err)
	}
}

func TestBaselineString(t *testing.T) {
	names := map[Baseline]string{
		BaselineSolo:     "solo",
		BaselineMajority: "majority",
		BaselineKNN:      "kNN",
		BaselineSpectral: "spectral",
		Baseline(9):      "invalid",
	}
	for b, want := range names {
		if b.String() != want {
			t.Fatalf("%d.String() = %q", b, b.String())
		}
	}
}

func TestRunBaselineCommunityReports(t *testing.T) {
	in := IdenticalInstance(64, 64, 0.5, 61)
	rep, err := RunBaseline(in, BaselineOptions{Baseline: BaselineSolo, Seed: 62})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Communities) != 1 || rep.Communities[0].Discrepancy != 0 {
		t.Fatalf("solo community report: %+v", rep.Communities)
	}
	if rep.MaxProbes != int64(in.M) {
		t.Fatalf("solo MaxProbes %d", rep.MaxProbes)
	}
}

func TestEvaluateCustomSet(t *testing.T) {
	in := PlantedInstance(64, 64, 0.5, 6, 90)
	rep, err := Run(in, Options{Algorithm: AlgoMain, Alpha: 0.5, D: 6, Seed: 91})
	if err != nil {
		t.Fatal(err)
	}
	comm := in.Communities[0].Members
	got := Evaluate(in, comm, rep.Outputs)
	want := rep.Communities[0]
	if got != want {
		t.Fatalf("Evaluate = %+v, Run reported %+v", got, want)
	}
	// a subset evaluates independently
	sub := Evaluate(in, comm[:3], rep.Outputs)
	if sub.Size != 3 || sub.Discrepancy > want.Discrepancy {
		t.Fatalf("subset report: %+v", sub)
	}
}

func TestRunRefreshEndToEnd(t *testing.T) {
	in := IdenticalInstance(128, 128, 0.5, 95)
	first, err := Run(in, Options{Algorithm: AlgoZero, Alpha: 0.5, Seed: 96})
	if err != nil {
		t.Fatal(err)
	}
	// drift the world and repair
	in2 := DriftInstance(in, 6, 0, 97)
	rep, err := RunRefresh(in2, first.Outputs, RefreshOptions{Alpha: 0.5, ExpectedDrift: 6, Seed: 98})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Communities[0].Discrepancy != 0 {
		t.Fatalf("refresh discrepancy %d", rep.Communities[0].Discrepancy)
	}
	if rep.MaxProbes >= first.MaxProbes {
		t.Fatalf("refresh cost %d not below fresh run %d", rep.MaxProbes, first.MaxProbes)
	}
	// validation
	if _, err := RunRefresh(nil, first.Outputs, RefreshOptions{Alpha: 0.5}); err == nil {
		t.Fatal("nil instance accepted")
	}
	if _, err := RunRefresh(in2, first.Outputs[:3], RefreshOptions{Alpha: 0.5}); err == nil {
		t.Fatal("mismatched stale length accepted")
	}
	if _, err := RunRefresh(in2, first.Outputs, RefreshOptions{Alpha: 0}); err == nil {
		t.Fatal("alpha 0 accepted")
	}
}
