package tellme

// One benchmark per reproduction experiment (see DESIGN.md §4 and
// EXPERIMENTS.md). Each bench times the workload that regenerates the
// corresponding table row; `go test -bench=E4 -benchmem` etc. The
// experiment tables themselves are produced by cmd/experiments.

import (
	"fmt"
	"testing"

	"tellme/internal/baseline"
	"tellme/internal/billboard"
	"tellme/internal/bitvec"
	"tellme/internal/core"
	"tellme/internal/ints"
	"tellme/internal/prefs"
	"tellme/internal/probe"
	"tellme/internal/rng"
	"tellme/internal/sim"
	"tellme/internal/telemetry"
)

func benchEnv(in *prefs.Instance, seed uint64) (*core.Env, *probe.Engine) {
	b := billboard.New(in.N, in.M)
	src := rng.NewSource(seed)
	e := probe.NewEngine(in, b, src.Child("engine", 0))
	env := core.NewEnv(e, sim.NewRunner(0), src.Child("public", 0), core.DefaultConfig())
	return env, e
}

func ids(n int) []int { return ints.Iota(n) }

// BenchmarkE1ZeroRadius regenerates E1: exact recovery on an identical
// community (Theorem 3.1).
func BenchmarkE1ZeroRadius(b *testing.B) {
	for i := 0; i < b.N; i++ {
		in := prefs.Identical(512, 512, 0.5, uint64(i))
		env, _ := benchEnv(in, uint64(i)+1)
		_ = core.ZeroRadiusBits(env, ids(in.N), ids(in.M), 0.5)
	}
}

// BenchmarkE2Select regenerates E2: the k(D+1) probe budget of Select
// (Theorem 3.2).
func BenchmarkE2Select(b *testing.B) {
	r := rng.New(1)
	m, k, d := 512, 8, 8
	truth := bitvec.Random(r, m)
	cands := make([]bitvec.Partial, k)
	planted := truth.Clone()
	planted.FlipRandom(r, d)
	cands[0] = bitvec.PartialOf(planted)
	for i := 1; i < k; i++ {
		cands[i] = bitvec.PartialOf(bitvec.Random(r, m))
	}
	in := prefs.FromVectors([]bitvec.Vector{truth})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := probe.NewEngine(in, billboard.New(1, m), rng.NewSource(uint64(i)))
		_ = core.SelectPartial(e.Player(0), ids(m), cands, d)
	}
}

// BenchmarkE3Partition regenerates E3: one Lemma 4.1 success trial at
// the paper's s = 100·d^{3/2}.
func BenchmarkE3Partition(b *testing.B) {
	r := rng.New(2)
	m, d := 1500, 4
	center := bitvec.Random(r, m)
	vecs := make([]bitvec.Vector, 25)
	for i := range vecs {
		v := center.Clone()
		v.FlipRandom(r, r.Intn(d/2+1))
		vecs[i] = v
	}
	s := 800 // 100·4^{3/2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.RandomPartitionTrial(r, vecs, m, s)
	}
}

// BenchmarkE4SmallRadius regenerates E4: the 5D error bound at
// D^{3/2}-scaled cost (Theorem 4.4).
func BenchmarkE4SmallRadius(b *testing.B) {
	for i := 0; i < b.N; i++ {
		in := prefs.Planted(256, 256, 0.5, 4, uint64(i))
		env, _ := benchEnv(in, uint64(i)+1)
		_ = core.SmallRadius(env, ids(in.N), ids(in.M), 0.5, 4, 4)
	}
}

// BenchmarkE5Coalesce regenerates E5: Theorem 5.3's clustering bounds.
func BenchmarkE5Coalesce(b *testing.B) {
	r := rng.New(3)
	m, d := 400, 6
	center := bitvec.Random(r, m)
	vecs := make([]bitvec.Partial, 0, 80)
	for i := 0; i < 20; i++ {
		v := center.Clone()
		v.FlipRandom(r, r.Intn(d/2+1))
		vecs = append(vecs, bitvec.PartialOf(v))
	}
	for len(vecs) < 80 {
		vecs = append(vecs, bitvec.PartialOf(bitvec.Random(r, m)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.Coalesce(vecs, d, 0.25)
	}
}

// BenchmarkE6LargeRadius regenerates E6: the O(D/α) error bound
// (Theorem 5.4).
func BenchmarkE6LargeRadius(b *testing.B) {
	for i := 0; i < b.N; i++ {
		in := prefs.Planted(256, 256, 0.5, 24, uint64(i))
		env, _ := benchEnv(in, uint64(i)+1)
		_ = core.LargeRadius(env, ids(in.N), ids(in.M), 0.5, 24)
	}
}

// BenchmarkE7RSelect regenerates E7: Theorem 6.1's boundless Choose
// Closest.
func BenchmarkE7RSelect(b *testing.B) {
	r := rng.New(4)
	m, k, d := 512, 6, 8
	truth := bitvec.Random(r, m)
	cands := make([]bitvec.Partial, k)
	planted := truth.Clone()
	planted.FlipRandom(r, d)
	cands[0] = bitvec.PartialOf(planted)
	for i := 1; i < k; i++ {
		v := truth.Clone()
		v.FlipRandom(r, 8*d+40)
		cands[i] = bitvec.PartialOf(v)
	}
	in := prefs.FromVectors([]bitvec.Vector{truth})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := probe.NewEngine(in, billboard.New(1, m), rng.NewSource(uint64(i)))
		_ = core.RSelect(e.Player(0), rng.New(uint64(i)), ids(m), cands, 30)
	}
}

// BenchmarkE8Main regenerates E8: the unknown-D wrapper behind
// Theorem 1.1.
func BenchmarkE8Main(b *testing.B) {
	for i := 0; i < b.N; i++ {
		in := prefs.Planted(128, 128, 0.5, 8, uint64(i))
		env, _ := benchEnv(in, uint64(i)+1)
		_ = core.UnknownD(env, 0.5)
	}
}

// BenchmarkE9Baselines regenerates E9's baseline side at a fixed budget.
func BenchmarkE9Baselines(b *testing.B) {
	in := prefs.AdversarialVoteSplit(256, 256, 0.3, 0, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		board := billboard.New(in.N, in.M)
		e := probe.NewEngine(in, board, rng.NewSource(uint64(i)))
		runner := sim.NewRunner(0)
		_ = baseline.SampleMajority(e, runner, 32, rng.NewSource(uint64(i)+1))
		_ = baseline.KNN(e, runner, 32, 8, rng.NewSource(uint64(i)+2))
		_ = baseline.Spectral(e, runner, 32, 2, 10, rng.NewSource(uint64(i)+3))
	}
}

// BenchmarkE10Anytime regenerates E10: two phases of the unknown-α
// doubling scheme.
func BenchmarkE10Anytime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		in := prefs.Planted(128, 128, 0.25, 4, uint64(i))
		env, _ := benchEnv(in, uint64(i)+1)
		_ = core.Anytime(env, 0, func(ph core.AnytimePhase) bool { return ph.Phase < 2 })
	}
}

// BenchmarkE11AblationPartC regenerates E11b's extreme partition-count
// configurations.
func BenchmarkE11AblationPartC(b *testing.B) {
	for _, pc := range []float64{0.25, 4} {
		b.Run(fmt.Sprintf("PartC=%v", pc), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.PartC = pc
			for i := 0; i < b.N; i++ {
				in := prefs.Planted(256, 256, 0.5, 4, uint64(i))
				board := billboard.New(in.N, in.M)
				src := rng.NewSource(uint64(i) + 1)
				e := probe.NewEngine(in, board, src.Child("engine", 0))
				env := core.NewEnv(e, sim.NewRunner(0), src.Child("public", 0), cfg)
				_ = core.SmallRadius(env, ids(in.N), ids(in.M), 0.5, 4, 4)
			}
		})
	}
}

// BenchmarkE12Adversarial regenerates E12: ZeroRadius against colluding
// outsider blocks.
func BenchmarkE12Adversarial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		in := prefs.AdversarialVoteSplit(256, 256, 0.3, 0, uint64(i))
		env, _ := benchEnv(in, uint64(i)+1)
		_ = core.ZeroRadiusBits(env, ids(in.N), ids(in.M), 0.3)
	}
}

// benchEnvTel mirrors benchEnv with a live telemetry registry attached
// to the whole stack — the enabled side of the telemetry-overhead
// comparison (BENCH_3.json; the plain E1/E8 benchmarks are the nil
// side).
func benchEnvTel(in *prefs.Instance, seed uint64, reg *telemetry.Registry) (*core.Env, *probe.Engine) {
	b := billboard.New(in.N, in.M)
	b.SetTelemetry(reg)
	src := rng.NewSource(seed)
	e := probe.NewEngine(in, b, src.Child("engine", 0), probe.WithTelemetry(reg))
	env := core.NewEnv(e, sim.NewRunner(0), src.Child("public", 0), core.DefaultConfig())
	env.Telemetry = reg
	return env, e
}

// BenchmarkE1ZeroRadiusTelemetry is BenchmarkE1ZeroRadius with live
// telemetry; the delta against the plain variant is the enabled
// overhead (budgeted ≤ 2%).
func BenchmarkE1ZeroRadiusTelemetry(b *testing.B) {
	reg := telemetry.New()
	for i := 0; i < b.N; i++ {
		in := prefs.Identical(512, 512, 0.5, uint64(i))
		env, _ := benchEnvTel(in, uint64(i)+1, reg)
		_ = core.ZeroRadiusBits(env, ids(in.N), ids(in.M), 0.5)
	}
}

// BenchmarkE8MainTelemetry is BenchmarkE8Main with live telemetry.
func BenchmarkE8MainTelemetry(b *testing.B) {
	reg := telemetry.New()
	for i := 0; i < b.N; i++ {
		in := prefs.Planted(128, 128, 0.5, 8, uint64(i))
		env, _ := benchEnvTel(in, uint64(i)+1, reg)
		_ = core.UnknownD(env, 0.5)
	}
}
